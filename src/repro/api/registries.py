"""Declarative plugin registries: the whole system from a plain config dict.

Every pluggable family in the library keeps a string-keyed
:class:`~repro.utils.registry.Registry` next to its built-ins; this module is
the one place that re-exports them all and adds the ``resolve_*`` helpers and
config-dict constructors the experiment runners and examples build on:

=============  ==========================================  =======================
registry       built-in names                              lives in
=============  ==========================================  =======================
STATISTICS     count/density, average/aggregate, sum,      :mod:`repro.data.statistics`
               variance, median, ratio
BACKENDS       numpy, chunked, sqlite, sharded             :mod:`repro.backends`
SURROGATES     boosting, compiled-boosting, forest, tree,  :mod:`repro.ml`
               knn, linear, ridge
OPTIMIZERS     gso, pso                                    :mod:`repro.optim`
=============  ==========================================  =======================

``compiled-boosting`` is gradient boosting whose predictions run through the
flat SoA kernel of :mod:`repro.ml.compiled` — bit-identical to ``boosting``
on the same seed, only faster at query time.

Third-party code registers new implementations (``BACKENDS.register("my-db",
factory)``) and they become constructible everywhere a name is accepted —
``DataEngine(backend="my-db")``, ``SurrogateTrainer(estimator="my-family")``,
:func:`engine_from_config`, the experiment runners.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Union

from repro.backends import BACKENDS, DataBackend
from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.statistics import STATISTICS, StatisticSpec, make_statistic
from repro.exceptions import ValidationError
from repro.ml import SURROGATES
from repro.optim import OPTIMIZERS
from repro.utils.registry import Registry


def resolve_statistic(name: str) -> Callable[..., StatisticSpec]:
    """The statistic factory registered under ``name`` (see :data:`STATISTICS`)."""
    return STATISTICS.resolve(name)


def resolve_backend(name: str) -> Callable[..., DataBackend]:
    """The backend factory registered under ``name`` (see :data:`BACKENDS`)."""
    return BACKENDS.resolve(name)


def resolve_surrogate(name: str) -> Callable:
    """The surrogate estimator family registered under ``name`` (see :data:`SURROGATES`)."""
    return SURROGATES.resolve(name)


def resolve_optimizer(name: str) -> Callable:
    """The optimiser class registered under ``name`` (see :data:`OPTIMIZERS`)."""
    return OPTIMIZERS.resolve(name)


def statistic_from_config(config: Union[str, StatisticSpec, Mapping[str, Any]]) -> StatisticSpec:
    """Build a statistic from a name, a ``{"name": ..., **options}`` dict, or
    pass a live :class:`StatisticSpec` through untouched."""
    if isinstance(config, StatisticSpec):
        return config
    if isinstance(config, str):
        return make_statistic(config)
    if isinstance(config, Mapping):
        options = dict(config)
        try:
            name = options.pop("name")
        except KeyError:
            raise ValidationError("statistic config dict needs a 'name' key") from None
        return make_statistic(name, **options)
    raise ValidationError(f"cannot build a statistic from {type(config)!r}")


def engine_from_config(dataset: Dataset, config: Mapping[str, Any]) -> DataEngine:
    """Construct a :class:`DataEngine` from a plain config dict.

    Recognised keys: ``statistic`` (name, ``{"name": ...}`` dict or live
    spec — required), ``backend`` (registry name or live backend),
    ``backend_options`` (dict), ``use_index`` / ``cells_per_dim`` (numpy
    backend's grid index).  Everything is resolved through the registries, so
    registered plugins work exactly like built-ins::

        engine = engine_from_config(dataset, {
            "statistic": {"name": "average", "target_column": "fare"},
            "backend": "sqlite",
            "backend_options": {"path": "crimes.db"},
        })
    """
    if not isinstance(config, Mapping):
        raise ValidationError(f"engine config must be a mapping, got {type(config)!r}")
    options = dict(config)
    try:
        statistic = statistic_from_config(options.pop("statistic"))
    except KeyError:
        raise ValidationError("engine config needs a 'statistic' key") from None
    known = {"backend", "backend_options", "use_index", "cells_per_dim"}
    unknown = sorted(set(options) - known)
    if unknown:
        raise ValidationError(
            f"engine config has unknown key(s) {unknown}; known keys: {sorted(known | {'statistic'})}"
        )
    return DataEngine(dataset, statistic, **options)


def kernel_from_config(
    finder_or_path,
    config: Optional[Mapping[str, Any]] = None,
):
    """Construct a :class:`~repro.api.kernel.ServiceKernel` from a config dict.

    ``finder_or_path`` is a fitted finder or a bundle path; ``config`` holds
    the kernel options (``cache_size``, ``min_satisfiability``, ...), with
    unknown keys rejected by name.
    """
    from repro.api.kernel import ServiceKernel, check_service_options
    from repro.core.finder import SuRF

    options = dict(config or {})
    check_service_options(options, where="kernel_from_config")
    if isinstance(finder_or_path, SuRF):
        return ServiceKernel(finder_or_path, **options)
    return ServiceKernel.from_bundle(finder_or_path, **options)


__all__ = [
    "Registry",
    "STATISTICS",
    "BACKENDS",
    "SURROGATES",
    "OPTIMIZERS",
    "resolve_statistic",
    "resolve_backend",
    "resolve_surrogate",
    "resolve_optimizer",
    "statistic_from_config",
    "engine_from_config",
    "kernel_from_config",
]
