"""Load-control middleware: deadlines, rate limiting and admission control.

The ROADMAP's "millions of users" north star means the front door must keep
answering — degraded, but bounded — when traffic exceeds what the swarm
optimiser can absorb.  These three stages slot into the PR 5 middleware chain
(each is a plain ``(ctx, next)`` callable) and turn overload into explicit
per-request verdicts instead of unbounded queueing:

* :class:`Deadline` — per-request latency budgets.  A request that cannot be
  answered inside its budget (either because it waited too long behind other
  work or because its GSO run stalled) comes back with status ``"timeout"``;
  its result, if one eventually materialises, is never cached.
* :class:`RateLimit` — a token bucket per tenant (or per any caller-chosen
  key).  Requests beyond the sustained rate are marked ``"throttled"``
  *before* the Eq. 5 probe, so a noisy tenant cannot burn satisfiability
  probes, cache slots or optimiser time.
* :class:`AdmissionControl` — a kernel-wide bound on concurrently executing
  GSO runs plus a bounded admission queue.  When a batch's distinct misses
  would push the in-flight count past the bound, the *lowest* Eq. 5
  satisfiability work is shed first (status ``"shed"``): under pressure the
  system spends its remaining capacity on the queries most likely to have
  satisfiable answers — the paper's Eq. 5 gate doubling as a load-shedding
  priority.

The canonical production order (see :func:`production_chain`) is::

    Normalize → RateLimit → SatisfiabilityGate → Deadline → Cache
              → Coalesce → AdmissionControl → Execute → Harvest

RateLimit sits before the gate (throttling must stay cheap), Deadline after
it (the budget clock starts once the request is admitted past the rate
limiter; its verdicts are applied inside the execute stage), and
AdmissionControl after Coalesce (shedding operates on *distinct* runs, and a
cached hit must never be shed).  Every stage takes an optional ``clock``
callable so tests can drive virtual time deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.api.envelopes import FindRequest
from repro.api.middleware import (
    BatchContext,
    Coalesce,
    Execute,
    Harvest,
    Middleware,
    Next,
    Normalize,
    SatisfiabilityGate,
    Cache,
)
from repro.exceptions import ValidationError

Clock = Callable[[], float]


# --------------------------------------------------------------------------- deadline
class Deadline:
    """Attach an absolute expiry time to every request in the batch.

    The stage itself only *stamps* ``state.deadline = now + budget`` (and
    publishes its clock in ``ctx.extras["deadline_clock"]``); enforcement
    lives in the execute stage, which skips runs every requester has given up
    on, abandons runs that stall past the latest requester's deadline, and
    refuses to deliver (or cache) results that arrive after a requester's
    budget.  A request's own ``deadline_seconds`` overrides the stage
    default; with neither, the request is unbounded.

    Parameters
    ----------
    default_budget:
        Budget in seconds applied to requests that carry no
        ``deadline_seconds`` of their own (``None`` = unbounded by default).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    name = "deadline"

    def __init__(self, default_budget: Optional[float] = None, clock: Clock = time.monotonic):
        if default_budget is not None and not default_budget > 0.0:
            raise ValidationError(f"default_budget must be > 0, got {default_budget}")
        self.default_budget = default_budget
        self._clock = clock

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        now = self._clock()
        stamped = False
        for state in ctx.states:
            if state.deadline is not None:
                # Already stamped (a generation retry re-enters the chain):
                # the original budget keeps running, it is never extended.
                stamped = True
                continue
            budget = state.request.deadline_seconds
            if budget is None:
                budget = self.default_budget
            if budget is not None:
                state.deadline = now + budget
                stamped = True
        if stamped:
            ctx.extras["deadline_clock"] = self._clock
        return next(ctx)


# --------------------------------------------------------------------------- rate limit
class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second up to ``capacity``.

    The conservation law (asserted by the Hypothesis suite): tokens granted
    can never exceed the initial burst capacity plus what the elapsed time
    refilled — ``granted <= capacity + rate * elapsed``.
    """

    def __init__(self, rate: float, capacity: float, clock: Clock = time.monotonic):
        if not rate > 0.0:
            raise ValidationError(f"rate must be > 0, got {rate}")
        if not capacity >= 1.0:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.granted = 0
        self.denied = 0
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._updated)
            self._updated = now
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.denied += 1
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (refilled as of now)."""
        with self._lock:
            elapsed = max(0.0, self._clock() - self._updated)
            return min(self.capacity, self._tokens + elapsed * self.rate)


def _tenant_key(request: FindRequest) -> str:
    return request.model


class RateLimit:
    """Per-key token-bucket throttling, keyed per tenant by default.

    Sits *before* the satisfiability gate: a throttled request never probes
    Eq. 5, never touches the cache and never runs the optimiser — its verdict
    (status ``"throttled"``) is decided outside any model snapshot and
    therefore survives generation retries.  One bucket is kept per key
    (default: the request's ``model``), created on first sight.

    Parameters
    ----------
    rate:
        Sustained tokens/second granted per key.
    capacity:
        Burst size (defaults to ``max(rate, 1)``).
    key:
        ``request -> str`` grouping function (default: tenant name).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    name = "rate-limit"

    def __init__(
        self,
        rate: float,
        capacity: Optional[float] = None,
        key: Callable[[FindRequest], str] = _tenant_key,
        clock: Clock = time.monotonic,
    ):
        if not rate > 0.0:
            raise ValidationError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else max(self.rate, 1.0)
        if not self.capacity >= 1.0:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self._key = key
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, key: str) -> TokenBucket:
        """The bucket for ``key`` (created on first use)."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.capacity, clock=self._clock)
                self._buckets[key] = bucket
            return bucket

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        for state in ctx.states:
            if not self.bucket(self._key(state.request)).try_acquire():
                state.status = "throttled"
        return next(ctx)


# --------------------------------------------------------------------------- admission
class AdmissionControl:
    """Bound concurrent optimiser work; shed the least-satisfiable work first.

    Tracks the number of distinct GSO runs currently executing across *all*
    batches of the kernel this stage is installed in.  A new batch may admit
    at most ``max_inflight + max_queue - currently_inflight`` additional
    distinct runs; anything beyond that is shed **lowest Eq. 5 satisfiability
    first** — under pressure, capacity goes to the queries most likely to
    have answers (the probabilities were just computed by the gate, so
    prioritising on them is free).

    Shed requests get status ``"shed"``, are removed from the coalescing map
    (so they are never executed, cached or harvested) and count into the
    ``shed`` stat.  Cached hits, rejections and throttles are never shed —
    this stage runs after classification and only touches pending misses.
    """

    name = "admission-control"

    def __init__(self, max_inflight: int = 8, max_queue: int = 8):
        if max_inflight < 1:
            raise ValidationError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValidationError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self._inflight = 0
        self._lock = threading.Lock()

    @property
    def inflight(self) -> int:
        """Distinct runs currently admitted and not yet finished."""
        with self._lock:
            return self._inflight

    def __call__(self, ctx: BatchContext, next: Next) -> BatchContext:
        if not ctx.pending:
            return next(ctx)
        capacity = self.max_inflight + self.max_queue
        obs = ctx._extras.get("obs") if ctx._extras is not None else None
        with self._lock:
            available = max(0, capacity - self._inflight)
            admitted = min(len(ctx.pending), available)
            self._inflight += admitted
            inflight_now = self._inflight
        if obs is not None:
            obs.admission_inflight.labels(ctx.kernel.name).set(inflight_now)
        try:
            overflow = len(ctx.pending) - admitted
            if overflow > 0:
                self._shed(ctx, overflow)
            return next(ctx)
        finally:
            with self._lock:
                self._inflight -= admitted
                inflight_now = self._inflight
            if obs is not None:
                obs.admission_inflight.labels(ctx.kernel.name).set(inflight_now)

    def _shed(self, ctx: BatchContext, overflow: int) -> None:
        # Keep the highest-probability distinct runs; shed the rest.  Ties
        # break on insertion order (later arrivals shed first).
        ranked: List[tuple] = sorted(
            enumerate(ctx.pending.items()),
            key=lambda item: (
                min(ctx.states[index].satisfiability for index in item[1][1]),
                -item[0],
            ),
        )
        shed_count = 0
        batch_seconds = time.perf_counter() - ctx.batch_start
        extras = ctx._extras
        obs = extras.get("obs") if extras is not None else None
        recorder = extras.get("obs_trace") if extras is not None else None
        for _position, (key, indices) in ranked[:overflow]:
            del ctx.pending[key]
            for index in indices:
                state = ctx.states[index]
                state.status = "shed"
                state.result = None
                state.elapsed_seconds = batch_seconds
                shed_count += 1
                if obs is not None:
                    obs.shed_total.labels(state.request.model, "overload").inc()
                if recorder is not None:
                    recorder.event(
                        index, "shed",
                        reason="overload",
                        satisfiability=float(state.satisfiability),
                    )
        if shed_count:
            kernel = ctx.kernel
            with kernel._lock:
                kernel._stats.shed += shed_count


# --------------------------------------------------------------------------- chains
def production_chain(
    *,
    rate_limit: Optional[RateLimit] = None,
    deadline: Optional[Deadline] = None,
    admission: Optional[AdmissionControl] = None,
    execute: Optional[Execute] = None,
    observability=None,
) -> List[Middleware]:
    """The serving chain with the load-control stages in canonical positions.

    Any stage left ``None`` is simply omitted (with all three ``None`` and no
    custom executor this degenerates to :func:`~repro.api.middleware.default_chain`).
    Pass ``execute=ProcessExecute(...)`` to run GSO on the process pool, and
    ``observability=True`` (or a configured :class:`repro.obs.Observability`)
    to prepend the tracing stage — the outermost position, so every other
    stage's latency lands in its span tree.
    """
    chain: List[Middleware] = []
    if observability is not None and observability is not False:
        from repro.obs.runtime import Trace

        chain.append(Trace(observability))
    chain.append(Normalize())
    if rate_limit is not None:
        chain.append(rate_limit)
    chain.append(SatisfiabilityGate())
    if deadline is not None:
        chain.append(deadline)
    chain.append(Cache())
    chain.append(Coalesce())
    if admission is not None:
        chain.append(admission)
    chain.append(execute if execute is not None else Execute())
    chain.append(Harvest())
    return chain


__all__ = [
    "Deadline",
    "TokenBucket",
    "RateLimit",
    "AdmissionControl",
    "production_chain",
]
