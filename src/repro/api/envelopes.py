"""Typed request/response envelopes — the wire format of the front door.

Every query entering the system is a frozen :class:`FindRequest` and every
answer leaving it is a frozen :class:`FindResponse`.  Both round-trip through
plain dicts and JSON (``to_dict``/``from_dict``, ``to_json``/``from_json``),
so HTTP front-ends, queues and log pipelines can carry them without knowing
anything about the library's internals.  The envelopes replace the ad-hoc
``(query, status, ...)`` tuples and the serve layer's ``ServiceResponse``
(which survives as a thin compatibility view in :mod:`repro.serve`).

A request names the **model** (tenant) it targets — a key in the
:class:`~repro.api.tenancy.ModelRegistry` — plus an optional caller-supplied
``trace_id`` that is echoed back verbatim for request correlation.  The
response carries the serving verdict (``served`` / ``cached`` / ``rejected``),
the Eq. 5 satisfiability probability, the proposals as serialisable
:class:`ProposalPayload` records, timing, and the model generation that
answered (so callers can detect hot swaps).  The rich in-process
:class:`~repro.core.finder.RegionSearchResult` rides along in ``result`` for
local callers but is deliberately excluded from the dict/JSON form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.finder import RegionSearchResult
from repro.core.query import RegionQuery
from repro.data.regions import Region
from repro.exceptions import ValidationError

#: Tenant name a request targets when none is given.
DEFAULT_MODEL = "default"


def _known_fields(cls) -> Tuple[str, ...]:
    return tuple(f.name for f in fields(cls) if f.init)


def _check_payload(cls, payload: Mapping[str, Any], *, ignore: Tuple[str, ...] = ()) -> Dict[str, Any]:
    """Validate a dict payload's keys against the dataclass fields."""
    if not isinstance(payload, Mapping):
        raise ValidationError(f"{cls.__name__} payload must be a mapping, got {type(payload)!r}")
    known = set(_known_fields(cls))
    unknown = sorted(set(payload) - known - set(ignore))
    if unknown:
        raise ValidationError(
            f"{cls.__name__} payload has unknown key(s) {unknown}; known keys: {sorted(known)}"
        )
    return {key: value for key, value in payload.items() if key in known}


@dataclass(frozen=True)
class FindRequest:
    """One region-mining query addressed to a named model.

    Parameters
    ----------
    threshold / direction / size_penalty:
        The :class:`~repro.core.query.RegionQuery` fields (Eqs. 2/4).
    model:
        Name of the tenant model this request is routed to (a key in the
        :class:`~repro.api.tenancy.ModelRegistry`; single-model kernels ignore
        it unless it mismatches their own name).
    max_proposals:
        Per-request cap on returned proposals (``None`` = the model's default).
    trace_id:
        Opaque caller-supplied correlation id, echoed on the response.
    deadline_seconds:
        Per-request latency budget.  Honoured when the serving chain contains
        a :class:`~repro.api.admission.Deadline` stage: a request that cannot
        be answered within its budget comes back with status ``"timeout"``
        instead of blocking the caller (``None`` = the stage's default budget,
        or no budget at all when the chain has no deadline stage).
    """

    threshold: float
    direction: str = "above"
    size_penalty: float = 4.0
    model: str = DEFAULT_MODEL
    max_proposals: Optional[int] = None
    trace_id: Optional[str] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        # RegionQuery owns the numeric validation; building it here surfaces
        # bad envelopes at construction time instead of deep in the kernel.
        query = RegionQuery(
            threshold=float(self.threshold),
            direction=self.direction,
            size_penalty=float(self.size_penalty),
        )
        object.__setattr__(self, "threshold", query.threshold)
        object.__setattr__(self, "size_penalty", query.size_penalty)
        if not isinstance(self.model, str) or not self.model:
            raise ValidationError(f"model must be a non-empty string, got {self.model!r}")
        if self.max_proposals is not None:
            if int(self.max_proposals) < 1:
                raise ValidationError(f"max_proposals must be >= 1, got {self.max_proposals}")
            object.__setattr__(self, "max_proposals", int(self.max_proposals))
        if self.trace_id is not None and not isinstance(self.trace_id, str):
            raise ValidationError(f"trace_id must be a string, got {type(self.trace_id)!r}")
        if self.deadline_seconds is not None:
            budget = float(self.deadline_seconds)
            if not budget > 0.0:
                raise ValidationError(
                    f"deadline_seconds must be > 0, got {self.deadline_seconds}"
                )
            object.__setattr__(self, "deadline_seconds", budget)

    @classmethod
    def from_query(
        cls,
        query: RegionQuery,
        model: str = DEFAULT_MODEL,
        max_proposals: Optional[int] = None,
        trace_id: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "FindRequest":
        """Wrap a :class:`RegionQuery` (optionally adding model/trace fields).

        Hot path: the query already passed :class:`RegionQuery` validation, so
        this skips ``__post_init__`` instead of re-validating the numerics —
        serving layers wrap every incoming query through here.
        """
        if not isinstance(query, RegionQuery):
            raise ValidationError(f"expected a RegionQuery, got {type(query)!r}")
        if not isinstance(model, str) or not model:
            raise ValidationError(f"model must be a non-empty string, got {model!r}")
        if max_proposals is not None and int(max_proposals) < 1:
            raise ValidationError(f"max_proposals must be >= 1, got {max_proposals}")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ValidationError(f"trace_id must be a string, got {type(trace_id)!r}")
        if deadline_seconds is not None and not float(deadline_seconds) > 0.0:
            raise ValidationError(f"deadline_seconds must be > 0, got {deadline_seconds}")
        return cls._bare(query, model, max_proposals, trace_id, deadline_seconds)

    @classmethod
    def _bare(
        cls,
        query: RegionQuery,
        model: str,
        max_proposals: Optional[int] = None,
        trace_id: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "FindRequest":
        """Unvalidated construction from known-good parts (serving hot path).

        Callers guarantee ``query`` is a live :class:`RegionQuery` and
        ``model`` a validated tenant name — the serving shim wraps every
        incoming query through here on cached hits.
        """
        self = object.__new__(cls)
        set_ = object.__setattr__
        set_(self, "threshold", query.threshold)
        set_(self, "direction", query.direction)
        set_(self, "size_penalty", query.size_penalty)
        set_(self, "model", model)
        set_(self, "max_proposals", max_proposals)
        set_(self, "trace_id", trace_id)
        set_(self, "deadline_seconds", deadline_seconds)
        return self

    def query(self) -> RegionQuery:
        """The plain :class:`RegionQuery` this envelope carries."""
        return RegionQuery(
            threshold=self.threshold, direction=self.direction, size_penalty=self.size_penalty
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe, lossless under :meth:`from_dict`)."""
        return {
            "threshold": self.threshold,
            "direction": self.direction,
            "size_penalty": self.size_penalty,
            "model": self.model,
            "max_proposals": self.max_proposals,
            "trace_id": self.trace_id,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FindRequest":
        """Rebuild a request from :meth:`to_dict` output (unknown keys raise)."""
        return cls(**_check_payload(cls, payload))

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict` (floats round-trip exactly)."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FindRequest":
        try:
            payload = json.loads(text)
        except (TypeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"invalid FindRequest JSON: {exc}") from exc
        return cls.from_dict(payload)


@dataclass(frozen=True)
class ProposalPayload:
    """Serialisable view of one :class:`~repro.core.postprocess.RegionProposal`."""

    center: Tuple[float, ...]
    half_lengths: Tuple[float, ...]
    predicted_value: float
    objective_value: float
    support: int = 1

    @classmethod
    def from_proposal(cls, proposal) -> "ProposalPayload":
        return cls(
            center=tuple(float(v) for v in proposal.region.center),
            half_lengths=tuple(float(v) for v in proposal.region.half_lengths),
            predicted_value=float(proposal.predicted_value),
            objective_value=float(proposal.objective_value),
            support=int(proposal.support),
        )

    def region(self) -> Region:
        """The proposal's hyper-rectangle as a live :class:`Region`."""
        return Region(np.asarray(self.center), np.asarray(self.half_lengths))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "center": list(self.center),
            "half_lengths": list(self.half_lengths),
            "predicted_value": self.predicted_value,
            "objective_value": self.objective_value,
            "support": self.support,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProposalPayload":
        payload = _check_payload(cls, payload)
        for key in ("center", "half_lengths"):
            if key in payload:
                payload[key] = tuple(float(v) for v in payload[key])
        return cls(**payload)


#: Every serving verdict a response may carry.  The first three are the
#: historical happy-path statuses; the rest are produced by the load-control
#: stages of :mod:`repro.api.admission` and the fault-tolerant executor:
#: ``"throttled"`` (per-tenant token bucket exhausted), ``"shed"`` (admission
#: control dropped the run under pressure), ``"timeout"`` (per-request
#: deadline expired) and ``"error"`` (the optimiser run raised; the message is
#: on ``error``).  None of the last four ever writes to the result cache.
RESPONSE_STATUSES = (
    "served",
    "cached",
    "rejected",
    "throttled",
    "shed",
    "timeout",
    "error",
)


@dataclass(frozen=True)
class FindResponse:
    """One answered request.

    ``status`` is ``"served"`` (fresh GSO run, possibly shared with identical
    queries of the same batch), ``"cached"`` (LRU hit), ``"rejected"``
    (Eq. 5 probability at or below the model's gate) or one of the degraded
    verdicts in :data:`RESPONSE_STATUSES` (``"throttled"`` / ``"shed"`` /
    ``"timeout"`` / ``"error"`` — produced under load-control middleware or an
    optimiser fault, never cached).  ``generation`` is the model generation
    that answered — it advances on every hot swap, so a caller can tell which
    model produced a cached result.  ``result`` carries the full in-process
    :class:`RegionSearchResult` for local callers; it is excluded from
    comparisons and from the dict/JSON forms (a response reconstructed from a
    payload has ``result=None``).  ``error`` holds the short exception text
    for ``"error"`` responses.  ``timing`` is the opt-in per-stage latency
    breakdown (stage name → seconds, inclusive of nested stages) attached
    when the kernel runs with ``Observability(timing_breakdown=True)``;
    ``None`` otherwise.
    """

    model: str
    status: str
    satisfiability: float
    proposals: Tuple[ProposalPayload, ...] = ()
    elapsed_seconds: float = 0.0
    generation: int = 0
    trace_id: Optional[str] = None
    error: Optional[str] = None
    timing: Optional[Dict[str, float]] = field(default=None, compare=False, repr=False)
    result: Optional[RegionSearchResult] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ValidationError(
                f"status must be one of {RESPONSE_STATUSES}, got {self.status!r}"
            )
        if self.error is not None and not isinstance(self.error, str):
            raise ValidationError(f"error must be a string, got {type(self.error)!r}")
        object.__setattr__(
            self, "proposals", tuple(self.proposals) if self.proposals else ()
        )

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def regions(self) -> Tuple[Region, ...]:
        """Proposed regions as live :class:`Region` objects."""
        return tuple(proposal.region() for proposal in self.proposals)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; drops the in-process ``result`` handle."""
        return {
            "model": self.model,
            "status": self.status,
            "satisfiability": self.satisfiability,
            "proposals": [proposal.to_dict() for proposal in self.proposals],
            "elapsed_seconds": self.elapsed_seconds,
            "generation": self.generation,
            "trace_id": self.trace_id,
            "error": self.error,
            "timing": dict(self.timing) if self.timing is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FindResponse":
        payload = _check_payload(cls, payload, ignore=("result",))
        payload.pop("result", None)
        if "proposals" in payload:
            payload["proposals"] = tuple(
                ProposalPayload.from_dict(item) for item in payload["proposals"]
            )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "FindResponse":
        try:
            payload = json.loads(text)
        except (TypeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"invalid FindResponse JSON: {exc}") from exc
        return cls.from_dict(payload)


__all__ = [
    "DEFAULT_MODEL",
    "RESPONSE_STATUSES",
    "FindRequest",
    "ProposalPayload",
    "FindResponse",
]
