"""Density-estimation substrate: KDE and histogram estimators plus region mass.

SuRF approximates the data distribution ``p_A(a)`` with Kernel Density
Estimation (over a sample for large datasets) and uses the probability mass of
a candidate region under that estimate to steer glowworms away from empty
space (Eq. 8 of the paper).
"""

from repro.density.histogram import HistogramDensityEstimator
from repro.density.kde import GaussianKDE
from repro.density.region_mass import RegionMassEstimator

__all__ = ["GaussianKDE", "HistogramDensityEstimator", "RegionMassEstimator"]
