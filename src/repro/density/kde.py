"""Gaussian kernel density estimation with product kernels.

The estimator uses a diagonal (per-dimension) bandwidth so that the
probability mass of an axis-aligned hyper-rectangle has a closed form as a
product of Gaussian CDF differences — exactly what Eq. 8 of the paper needs.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
from scipy.special import ndtr

from repro.data.regions import Region
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_array


class GaussianKDE:
    """Product-kernel Gaussian KDE with Scott/Silverman or fixed bandwidths.

    Parameters
    ----------
    bandwidth:
        ``"scott"`` (default), ``"silverman"`` or a positive float / per-dimension
        array of bandwidth multipliers.
    max_samples:
        If the fitted data has more rows than this, a uniform subsample is used —
        mirroring the paper's note that the KDE is built "over a sample for
        large-scale datasets".
    random_state:
        Seed for the subsample.
    """

    def __init__(
        self,
        bandwidth: Union[str, float, np.ndarray] = "scott",
        max_samples: int = 20_000,
        random_state=None,
    ):
        self.bandwidth = bandwidth
        self.max_samples = int(max_samples)
        self.random_state = random_state

        self._samples: Optional[np.ndarray] = None
        self._bandwidths: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    def fit(self, points) -> "GaussianKDE":
        """Fit the KDE to ``points`` of shape ``(n, d)``."""
        points = check_array(points, name="points", ndim=2)
        if points.shape[0] < 2:
            raise ValidationError("at least two points are required to fit a KDE")
        if points.shape[0] > self.max_samples:
            rng = ensure_rng(self.random_state)
            rows = rng.choice(points.shape[0], size=self.max_samples, replace=False)
            points = points[rows]
        self._samples = points
        self._bandwidths = self._compute_bandwidths(points)
        return self

    def _compute_bandwidths(self, points: np.ndarray) -> np.ndarray:
        num_samples, dim = points.shape
        spread = points.std(axis=0)
        spread = np.where(spread <= 0, 1e-6, spread)
        if isinstance(self.bandwidth, str):
            rule = self.bandwidth.lower()
            if rule == "scott":
                factor = num_samples ** (-1.0 / (dim + 4))
            elif rule == "silverman":
                factor = (num_samples * (dim + 2) / 4.0) ** (-1.0 / (dim + 4))
            else:
                raise ValidationError(
                    f"bandwidth must be 'scott', 'silverman' or a number, got {self.bandwidth!r}"
                )
            return factor * spread
        bandwidths = np.asarray(self.bandwidth, dtype=np.float64)
        if bandwidths.ndim == 0:
            bandwidths = np.full(dim, float(bandwidths))
        if bandwidths.shape != (dim,):
            raise ValidationError(f"bandwidth array must have shape ({dim},)")
        if np.any(bandwidths <= 0):
            raise ValidationError("bandwidths must be strictly positive")
        return bandwidths

    def _check_fitted(self) -> None:
        if self._samples is None:
            raise NotFittedError("GaussianKDE must be fitted before use")

    # ------------------------------------------------------------------ queries
    @property
    def dim(self) -> int:
        """Dimensionality of the fitted data."""
        self._check_fitted()
        return self._samples.shape[1]

    @property
    def bandwidths_(self) -> np.ndarray:
        """Fitted per-dimension bandwidths."""
        self._check_fitted()
        return self._bandwidths.copy()

    def pdf(self, points) -> np.ndarray:
        """Density estimate at each row of ``points``."""
        self._check_fitted()
        points = check_array(points, name="points", ndim=2)
        if points.shape[1] != self.dim:
            raise ValidationError(
                f"points have dimensionality {points.shape[1]}, KDE has {self.dim}"
            )
        samples = self._samples
        bandwidths = self._bandwidths
        norm = np.prod(bandwidths) * (2 * np.pi) ** (self.dim / 2.0)
        densities = np.empty(points.shape[0], dtype=np.float64)
        # Chunk over query points to bound the (n_query, n_sample) intermediate.
        chunk = max(1, int(2_000_000 / max(samples.shape[0], 1)))
        for start in range(0, points.shape[0], chunk):
            block = points[start : start + chunk]
            z = (block[:, None, :] - samples[None, :, :]) / bandwidths
            kernel = np.exp(-0.5 * np.sum(z**2, axis=2))
            densities[start : start + chunk] = kernel.sum(axis=1) / (samples.shape[0] * norm)
        return densities

    def region_mass(self, region: Region) -> float:
        """Probability mass of an axis-aligned region under the KDE.

        With a product Gaussian kernel the mass factorises over dimensions:
        for each sample and dimension it is the difference of two normal CDFs.
        """
        self._check_fitted()
        if region.dim != self.dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, KDE has {self.dim}"
            )
        return float(self.region_mass_batch(region.lower[None, :], region.upper[None, :])[0])

    def region_mass_batch(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Probability mass of many axis-aligned boxes at once.

        Parameters
        ----------
        lowers / uppers:
            Arrays of shape ``(m, d)`` with the lower/upper corners of ``m`` boxes.
        """
        self._check_fitted()
        lowers = np.asarray(lowers, dtype=np.float64)
        uppers = np.asarray(uppers, dtype=np.float64)
        if lowers.ndim != 2 or lowers.shape != uppers.shape or lowers.shape[1] != self.dim:
            raise ValidationError(
                f"lowers and uppers must both have shape (m, {self.dim})"
            )
        samples = self._samples
        bandwidths = self._bandwidths
        masses = np.empty(lowers.shape[0], dtype=np.float64)
        # Chunk over query boxes to bound the (m, n_samples, d) intermediate.
        chunk = max(1, int(2_000_000 / max(samples.shape[0], 1)))
        for start in range(0, lowers.shape[0], chunk):
            upper_z = (uppers[start : start + chunk, None, :] - samples[None, :, :]) / bandwidths
            lower_z = (lowers[start : start + chunk, None, :] - samples[None, :, :]) / bandwidths
            per_dim = ndtr(upper_z) - ndtr(lower_z)
            masses[start : start + chunk] = np.prod(per_dim, axis=2).mean(axis=1)
        return masses

    def sample(self, size: int, random_state=None) -> np.ndarray:
        """Draw samples from the fitted KDE (kernel mixture sampling)."""
        self._check_fitted()
        rng = ensure_rng(random_state)
        rows = rng.integers(0, self._samples.shape[0], size=int(size))
        noise = rng.normal(0.0, 1.0, size=(int(size), self.dim)) * self._bandwidths
        return self._samples[rows] + noise
