"""Uniform interface for region probability-mass estimation (Eq. 8 guidance).

The GSO optimiser only needs one operation from a density model: "how much
data mass does this candidate region cover?".  :class:`RegionMassEstimator`
wraps either estimator behind that single method and adds the small-floor
behaviour used when re-weighting neighbour-selection probabilities.
"""

from __future__ import annotations

from typing import Literal, Optional, Union

import numpy as np

from repro.data.regions import Region
from repro.density.histogram import HistogramDensityEstimator
from repro.density.kde import GaussianKDE
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array

EstimatorKind = Literal["kde", "histogram"]


class RegionMassEstimator:
    """Estimates ``∫_{x-l}^{x+l} p_A(a) da`` for candidate regions.

    After ``fit``, every query method is read-only; the serving layer
    (:mod:`repro.serve`) relies on this to share one fitted estimator across
    concurrently executing GSO runs without locking.

    Parameters
    ----------
    method:
        ``"kde"`` (Gaussian KDE, works in any dimensionality) or
        ``"histogram"`` (cheaper, low dimensions only).
    floor:
        A small positive lower bound applied to returned masses so that
        multiplying selection probabilities by the mass (Eq. 8) never zeroes
        out every neighbour.
    max_samples / bins_per_dim / random_state:
        Passed to the wrapped estimator.
    """

    def __init__(
        self,
        method: EstimatorKind = "kde",
        floor: float = 1e-6,
        max_samples: int = 20_000,
        bins_per_dim: int = 20,
        random_state=None,
    ):
        if method not in ("kde", "histogram"):
            raise ValidationError(f"method must be 'kde' or 'histogram', got {method!r}")
        if floor <= 0:
            raise ValidationError(f"floor must be > 0, got {floor}")
        self.method = method
        self.floor = float(floor)
        self.max_samples = int(max_samples)
        self.bins_per_dim = int(bins_per_dim)
        self.random_state = random_state
        self._estimator: Union[None, GaussianKDE, HistogramDensityEstimator] = None

    def fit(self, points) -> "RegionMassEstimator":
        """Fit the underlying density estimator to ``points`` of shape ``(n, d)``."""
        points = check_array(points, name="points", ndim=2)
        if self.method == "kde":
            self._estimator = GaussianKDE(
                max_samples=self.max_samples, random_state=self.random_state
            ).fit(points)
        else:
            self._estimator = HistogramDensityEstimator(bins_per_dim=self.bins_per_dim).fit(points)
        return self

    def _check_fitted(self) -> None:
        if self._estimator is None:
            raise NotFittedError("RegionMassEstimator must be fitted before use")

    @property
    def dim(self) -> int:
        """Dimensionality of the fitted data."""
        self._check_fitted()
        return self._estimator.dim

    def region_mass(self, region: Region) -> float:
        """Probability mass covered by ``region``, floored at ``self.floor``."""
        self._check_fitted()
        return max(self.floor, float(self._estimator.region_mass(region)))

    def mass_of_vector(self, vector: np.ndarray) -> float:
        """Probability mass of a region encoded as the ``[x, l]`` solution vector."""
        return self.region_mass(Region.from_vector(np.asarray(vector, dtype=np.float64)))

    def mass_of_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Probability masses for a batch of ``[x, l]`` solution vectors, shape ``(m, 2d)``."""
        self._check_fitted()
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != 2 * self.dim:
            raise ValidationError(f"vectors must have shape (m, {2 * self.dim})")
        dim = self.dim
        centers = vectors[:, :dim]
        halves = vectors[:, dim:]
        lowers = centers - halves
        uppers = centers + halves
        if isinstance(self._estimator, GaussianKDE):
            masses = self._estimator.region_mass_batch(lowers, uppers)
        else:
            masses = np.asarray(
                [self._estimator.region_mass(Region.from_vector(vector)) for vector in vectors]
            )
        return np.maximum(masses, self.floor)
