"""Multidimensional histogram density estimator.

A cheaper alternative to the Gaussian KDE for steering glowworms: probability
mass of a region is approximated by summing (fractionally) overlapped bins.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.regions import Region
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_array


class HistogramDensityEstimator:
    """Density estimation on a regular grid with fractional-bin region mass.

    Parameters
    ----------
    bins_per_dim:
        Number of equal-width bins per dimension.
    """

    def __init__(self, bins_per_dim: int = 20):
        if int(bins_per_dim) < 1:
            raise ValidationError(f"bins_per_dim must be >= 1, got {bins_per_dim}")
        self.bins_per_dim = int(bins_per_dim)

        self._counts: Optional[np.ndarray] = None
        self._edges: Optional[list] = None
        self._total: int = 0

    def fit(self, points) -> "HistogramDensityEstimator":
        """Fit the histogram to ``points`` of shape ``(n, d)``."""
        points = check_array(points, name="points", ndim=2)
        dim = points.shape[1]
        if dim > 6:
            raise ValidationError(
                "HistogramDensityEstimator is practical only up to 6 dimensions; "
                "use GaussianKDE for higher-dimensional data"
            )
        self._counts, edges = np.histogramdd(points, bins=self.bins_per_dim)
        self._edges = [np.asarray(edge) for edge in edges]
        self._total = points.shape[0]
        return self

    def _check_fitted(self) -> None:
        if self._counts is None:
            raise NotFittedError("HistogramDensityEstimator must be fitted before use")

    @property
    def dim(self) -> int:
        """Dimensionality of the fitted data."""
        self._check_fitted()
        return self._counts.ndim

    def pdf(self, points) -> np.ndarray:
        """Piecewise-constant density estimate at each row of ``points``."""
        self._check_fitted()
        points = check_array(points, name="points", ndim=2)
        if points.shape[1] != self.dim:
            raise ValidationError(
                f"points have dimensionality {points.shape[1]}, histogram has {self.dim}"
            )
        bin_volume = np.prod([edge[1] - edge[0] for edge in self._edges])
        densities = np.zeros(points.shape[0], dtype=np.float64)
        indices = []
        inside = np.ones(points.shape[0], dtype=bool)
        for axis, edge in enumerate(self._edges):
            idx = np.searchsorted(edge, points[:, axis], side="right") - 1
            idx = np.clip(idx, 0, len(edge) - 2)
            indices.append(idx)
            inside &= (points[:, axis] >= edge[0]) & (points[:, axis] <= edge[-1])
        counts = self._counts[tuple(indices)]
        densities[inside] = counts[inside] / (self._total * bin_volume)
        return densities

    def region_mass(self, region: Region) -> float:
        """Probability mass of ``region`` with fractional coverage of edge bins."""
        self._check_fitted()
        if region.dim != self.dim:
            raise ValidationError(
                f"region has dimensionality {region.dim}, histogram has {self.dim}"
            )
        overlaps = []
        for axis, edge in enumerate(self._edges):
            bin_low = edge[:-1]
            bin_high = edge[1:]
            overlap = np.minimum(bin_high, region.upper[axis]) - np.maximum(bin_low, region.lower[axis])
            width = bin_high - bin_low
            overlaps.append(np.clip(overlap, 0.0, None) / np.maximum(width, 1e-300))
        fraction = overlaps[0]
        for axis_overlap in overlaps[1:]:
            fraction = np.multiply.outer(fraction, axis_overlap)
        return float(np.sum(self._counts * fraction) / self._total)
