"""Baseline region-mining methods the paper compares SuRF against.

* :class:`NaiveGridSearch` — the Section II-A exhaustive discretised search.
* :class:`PRIM` — Friedman & Fisher's Patient Rule Induction Method.
* :class:`TrueFunctionGSO` — GSO driven by the true statistic (``f+GlowWorm``).
* :class:`TopKRegionFinder` — the related-work top-k formulation.
"""

from repro.baselines.naive import NaiveGridSearch
from repro.baselines.prim import PRIM, PrimBox
from repro.baselines.topk import TopKRegionFinder
from repro.baselines.true_gso import TrueFunctionGSO

__all__ = ["NaiveGridSearch", "PRIM", "PrimBox", "TrueFunctionGSO", "TopKRegionFinder"]
