"""Top-k region mining — the related-work formulation the paper contrasts with.

Instead of a threshold, the analyst asks for the ``k`` highest-statistic
regions among a pool of candidates.  The paper argues this formulation is less
natural (``k`` is rarely known) and that when all top-k candidates fall inside
one true region a multimodal threshold query finds more of the interesting
structure; this implementation exists to demonstrate that comparison.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.postprocess import RegionProposal
from repro.data.engine import DataEngine
from repro.data.regions import Region, random_region
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng


class TopKRegionFinder:
    """Returns the ``k`` candidate regions with the largest true statistic.

    Candidates are drawn uniformly at random over the data domain (centres
    uniform, sizes a uniform fraction of the extent), matching the candidate
    model used elsewhere in the library.

    Parameters
    ----------
    num_candidates:
        Number of random candidate regions evaluated.
    min_fraction / max_fraction:
        Candidate half side lengths as a fraction of the data extent.
    deduplicate:
        When true, candidates overlapping an already-selected one (IoU above
        ``overlap_threshold``) are skipped, so the k results are distinct.
    """

    def __init__(
        self,
        num_candidates: int = 2_000,
        min_fraction: float = 0.01,
        max_fraction: float = 0.15,
        deduplicate: bool = False,
        overlap_threshold: float = 0.3,
        random_state=None,
    ):
        if num_candidates < 1:
            raise ValidationError(f"num_candidates must be >= 1, got {num_candidates}")
        self.num_candidates = int(num_candidates)
        self.min_fraction = float(min_fraction)
        self.max_fraction = float(max_fraction)
        self.deduplicate = bool(deduplicate)
        self.overlap_threshold = float(overlap_threshold)
        self.random_state = random_state

    def find_regions(self, engine: DataEngine, k: int, largest: bool = True) -> List[RegionProposal]:
        """Evaluate random candidates and return the top-``k`` by true statistic."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        rng = ensure_rng(self.random_state)
        bounds = engine.region_bounds()
        candidates = [
            random_region(rng, bounds, self.min_fraction, self.max_fraction)
            for _ in range(self.num_candidates)
        ]
        values = engine.evaluate_many(candidates)
        order = np.argsort(values)
        if largest:
            order = order[::-1]

        proposals: List[RegionProposal] = []
        for index in order:
            region = candidates[int(index)]
            if self.deduplicate and any(
                kept.region.iou(region) >= self.overlap_threshold for kept in proposals
            ):
                continue
            proposals.append(
                RegionProposal(
                    region=region,
                    predicted_value=float(values[int(index)]),
                    objective_value=float(values[int(index)]),
                )
            )
            if len(proposals) >= k:
                break
        return proposals
