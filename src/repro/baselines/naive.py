"""The Naive baseline: exhaustive search over a discretised region grid (Section II-A).

Centres are discretised into ``n`` values per dimension and half side lengths
into ``m`` values per dimension, producing ``(n · m)^d`` candidate regions.
Every candidate is evaluated against the true back-end, which is what makes
the approach exponential in ``d`` and linear in ``N`` — the behaviour Table I
demonstrates.  A configurable time budget reproduces the paper's timeout
protocol (the fraction of candidates examined is reported alongside).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.postprocess import RegionProposal
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.exceptions import ValidationError


@dataclass
class NaiveSearchReport:
    """Outcome bookkeeping of one naive search run."""

    num_candidates: int
    num_evaluated: int
    elapsed_seconds: float
    timed_out: bool

    @property
    def fraction_evaluated(self) -> float:
        """Fraction of the candidate grid evaluated before finishing or timing out."""
        if self.num_candidates == 0:
            return 0.0
        return self.num_evaluated / self.num_candidates


class NaiveGridSearch:
    """Exhaustive discretised search for regions satisfying a threshold query.

    Parameters
    ----------
    num_centers:
        Number of discretised centre values per dimension (``n``; the paper uses 6).
    num_lengths:
        Number of discretised half side lengths per dimension (``m``; the paper uses 6).
    min_half_fraction / max_half_fraction:
        Range of half side lengths as a fraction of each dimension's extent.
    time_budget_seconds:
        Optional wall-clock budget; when exceeded the search stops early and
        reports the fraction of candidates examined (as Table I does).
    max_candidates:
        Optional hard cap on the number of candidates evaluated (uniformly
        strided over the grid) so very high-dimensional runs stay bounded.
    """

    def __init__(
        self,
        num_centers: int = 6,
        num_lengths: int = 6,
        min_half_fraction: float = 0.01,
        max_half_fraction: float = 0.3,
        time_budget_seconds: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ):
        if num_centers < 1 or num_lengths < 1:
            raise ValidationError("num_centers and num_lengths must be >= 1")
        if not 0 < min_half_fraction <= max_half_fraction:
            raise ValidationError("require 0 < min_half_fraction <= max_half_fraction")
        self.num_centers = int(num_centers)
        self.num_lengths = int(num_lengths)
        self.min_half_fraction = float(min_half_fraction)
        self.max_half_fraction = float(max_half_fraction)
        self.time_budget_seconds = time_budget_seconds
        self.max_candidates = max_candidates

        self.last_report_: Optional[NaiveSearchReport] = None

    # ------------------------------------------------------------------ candidate grid
    def _candidate_axes(self, engine: DataEngine):
        bounds = engine.region_bounds()
        extent = bounds.upper - bounds.lower
        center_axes = [
            np.linspace(bounds.lower[i], bounds.upper[i], self.num_centers)
            for i in range(bounds.dim)
        ]
        length_axes = [
            np.linspace(
                self.min_half_fraction * extent[i],
                self.max_half_fraction * extent[i],
                self.num_lengths,
            )
            for i in range(bounds.dim)
        ]
        return center_axes, length_axes

    def num_candidates(self, engine: DataEngine) -> int:
        """Size of the full candidate grid, ``(n · m)^d``."""
        dim = engine.region_dim
        return (self.num_centers * self.num_lengths) ** dim

    def _iter_candidates(self, engine: DataEngine):
        center_axes, length_axes = self._candidate_axes(engine)
        per_dim = [
            [(center, half) for center in center_axes[i] for half in length_axes[i]]
            for i in range(len(center_axes))
        ]
        for combination in itertools.product(*per_dim):
            center = np.asarray([pair[0] for pair in combination])
            half = np.asarray([pair[1] for pair in combination])
            yield Region(center, half)

    # ------------------------------------------------------------------ search
    def find_regions(
        self,
        engine: DataEngine,
        query: RegionQuery,
        max_proposals: Optional[int] = None,
        overlap_threshold: float = 0.3,
    ) -> List[RegionProposal]:
        """Evaluate the candidate grid and return satisfying regions as proposals.

        Candidates whose true statistic satisfies ``query`` are ranked by the
        log objective (Eq. 4) and greedily de-duplicated by IoU, exactly like
        SuRF's post-processing, so accuracy comparisons are apples-to-apples.
        """
        total = self.num_candidates(engine)
        stride = 1
        if self.max_candidates is not None and total > self.max_candidates:
            stride = int(np.ceil(total / self.max_candidates))

        start = time.perf_counter()
        timed_out = False
        evaluated = 0
        satisfying: List[tuple] = []
        for index, region in enumerate(self._iter_candidates(engine)):
            if stride > 1 and index % stride != 0:
                continue
            if self.time_budget_seconds is not None and time.perf_counter() - start > self.time_budget_seconds:
                timed_out = True
                break
            value = engine.evaluate(region)
            evaluated += 1
            if query.satisfied_by(value):
                # Log objective (Eq. 4) computed from the already-evaluated statistic,
                # so each candidate costs exactly one back-end evaluation.
                objective_value = float(
                    np.log(query.margin(value))
                    - query.size_penalty * np.sum(np.log(region.half_lengths))
                )
                satisfying.append((objective_value, value, region))

        elapsed = time.perf_counter() - start
        self.last_report_ = NaiveSearchReport(
            num_candidates=total,
            num_evaluated=evaluated,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
        )

        satisfying.sort(key=lambda item: item[0], reverse=True)
        proposals: List[RegionProposal] = []
        for objective_value, value, region in satisfying:
            if any(kept.region.iou(region) >= overlap_threshold for kept in proposals):
                continue
            proposals.append(
                RegionProposal(
                    region=region,
                    predicted_value=float(value),
                    objective_value=float(objective_value),
                )
            )
            if max_proposals is not None and len(proposals) >= max_proposals:
                break
        return proposals
