"""f+GlowWorm: glowworm swarm optimisation driven by the *true* statistic.

Identical to SuRF's optimisation stage except that every fitness evaluation
queries the back-end :class:`DataEngine` — this is the accuracy upper bound
and cost lower bound the paper compares against (its run time scales with
``N`` while SuRF's does not).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.objective import ObjectiveKind, make_objective
from repro.core.postprocess import RegionProposal, proposals_from_result
from repro.core.query import RegionQuery, SolutionSpace
from repro.data.engine import DataEngine
from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters
from repro.optim.result import OptimizationResult


@dataclass
class TrueGSOResult:
    """Proposals plus raw optimisation diagnostics for an f+GlowWorm run."""

    proposals: List[RegionProposal]
    optimization: OptimizationResult
    elapsed_seconds: float
    function_evaluations: int


class TrueFunctionGSO:
    """GSO over the true objective (no surrogate).

    Parameters
    ----------
    objective:
        ``"log"`` (Eq. 4, default) or ``"ratio"`` (Eq. 2).
    gso_parameters:
        Swarm configuration; scaled to the solution dimensionality when omitted.
    min_half_fraction / max_half_fraction / overlap_threshold:
        Same meaning as in :class:`repro.core.finder.SuRF`.
    """

    def __init__(
        self,
        objective: ObjectiveKind = "log",
        gso_parameters: Optional[GSOParameters] = None,
        min_half_fraction: float = 0.005,
        max_half_fraction: float = 0.5,
        overlap_threshold: float = 0.3,
        random_state: Optional[int] = None,
    ):
        self.objective_kind = objective
        self.gso_parameters = gso_parameters
        self.min_half_fraction = float(min_half_fraction)
        self.max_half_fraction = float(max_half_fraction)
        self.overlap_threshold = float(overlap_threshold)
        self.random_state = random_state

        self.last_result_: Optional[TrueGSOResult] = None

    def find_regions(
        self,
        engine: DataEngine,
        query: RegionQuery,
        max_proposals: Optional[int] = None,
    ) -> List[RegionProposal]:
        """Mine regions for ``query`` by optimising the true objective directly."""
        start = time.perf_counter()
        engine.reset_evaluation_counter()

        space = SolutionSpace(
            engine.region_bounds(),
            min_half_fraction=self.min_half_fraction,
            max_half_fraction=self.max_half_fraction,
        )
        # The true objective is still served by the data engine, but every
        # per-iteration swarm evaluation goes through the engine's batched
        # path: one broadcast over the data per iteration instead of L scalar
        # scans.
        objective = make_objective(
            self.objective_kind,
            engine.evaluate_vector,
            query,
            batch_statistic_fn=engine.evaluate_batch,
        )
        parameters = self.gso_parameters
        if parameters is None:
            parameters = GSOParameters.for_dimension(space.solution_dim, random_state=self.random_state)

        lower, upper = space.bounds_vectors()
        optimizer = GlowwormSwarmOptimizer(
            objective, lower, upper, parameters, batch_objective=objective.evaluate_batch
        )
        result = optimizer.run()
        proposals = proposals_from_result(
            result,
            objective,
            engine.evaluate_vector,
            overlap_threshold=self.overlap_threshold,
            max_proposals=max_proposals,
            batch_predictor=engine.evaluate_batch,
        )
        elapsed = time.perf_counter() - start
        self.last_result_ = TrueGSOResult(
            proposals=proposals,
            optimization=result,
            elapsed_seconds=elapsed,
            function_evaluations=engine.num_evaluations,
        )
        return proposals
