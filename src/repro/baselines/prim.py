"""PRIM — the Patient Rule Induction Method (Friedman & Fisher, 1999).

PRIM greedily *peels* small slivers off a bounding box, each time removing the
sliver whose removal maximises the mean response of the remaining points,
until the box's support drops to a minimum mass.  A *pasting* pass then tries
to re-grow the box, and a *covering* loop removes the found box's points and
repeats to discover further boxes.

PRIM maximises the mean of a response attribute; it has no notion of point
density or box volume, which is why the paper finds it competitive on the
aggregate statistic but unable to locate density-defined regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.postprocess import RegionProposal
from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_same_length


@dataclass(frozen=True)
class PrimBox:
    """A box found by PRIM: its bounds, mean response, support and mass."""

    lower: np.ndarray
    upper: np.ndarray
    mean_response: float
    support: int
    mass: float

    def to_region(self) -> Region:
        """Convert the box to a :class:`Region` (degenerate sides get a tiny width)."""
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        upper = np.where(upper - lower <= 1e-12, lower + 1e-6, upper)
        return Region.from_bounds(lower, upper)

    def to_proposal(self) -> RegionProposal:
        """Convert the box to a :class:`RegionProposal` (objective = mean response)."""
        return RegionProposal(
            region=self.to_region(),
            predicted_value=self.mean_response,
            objective_value=self.mean_response,
            support=self.support,
        )


class PRIM:
    """Patient Rule Induction Method for bump hunting.

    Parameters
    ----------
    peel_alpha:
        Fraction of the current box's points peeled off per step (0.05 is the
        classic default).
    paste_alpha:
        Fraction of points considered when re-expanding a face during pasting.
    mass_min:
        Minimum box mass (support divided by the full dataset size) — ``β0`` in
        the paper, set to 0.01 in its experiments.
    threshold:
        Stop the covering loop once a new box's mean response falls below this
        value (the paper uses 2 for the aggregate statistic).  ``None`` keeps
        covering until ``max_boxes`` or the data is exhausted.
    max_boxes:
        Maximum number of boxes returned by the covering loop.
    """

    def __init__(
        self,
        peel_alpha: float = 0.05,
        paste_alpha: float = 0.01,
        mass_min: float = 0.01,
        threshold: Optional[float] = None,
        max_boxes: int = 5,
    ):
        if not 0 < peel_alpha < 0.5:
            raise ValidationError(f"peel_alpha must be in (0, 0.5), got {peel_alpha}")
        if not 0 < paste_alpha < 0.5:
            raise ValidationError(f"paste_alpha must be in (0, 0.5), got {paste_alpha}")
        if not 0 < mass_min < 1:
            raise ValidationError(f"mass_min must be in (0, 1), got {mass_min}")
        if max_boxes < 1:
            raise ValidationError(f"max_boxes must be >= 1, got {max_boxes}")
        self.peel_alpha = float(peel_alpha)
        self.paste_alpha = float(paste_alpha)
        self.mass_min = float(mass_min)
        self.threshold = threshold
        self.max_boxes = int(max_boxes)

    # ------------------------------------------------------------------ peeling / pasting
    def _peel(self, points: np.ndarray, response: np.ndarray, total_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Peel the current box down until its mass reaches ``mass_min``."""
        lower = points.min(axis=0).astype(np.float64)
        upper = points.max(axis=0).astype(np.float64)
        mask = np.ones(points.shape[0], dtype=bool)
        min_support = max(1, int(np.ceil(self.mass_min * total_size)))

        while mask.sum() > min_support:
            inside_points = points[mask]
            inside_response = response[mask]
            best_mean = -np.inf
            best_update = None
            for axis in range(points.shape[1]):
                column = inside_points[:, axis]
                low_cut = np.quantile(column, self.peel_alpha)
                high_cut = np.quantile(column, 1.0 - self.peel_alpha)
                keep_low = column > low_cut
                keep_high = column < high_cut
                for keep, bound, value in (
                    (keep_low, "lower", low_cut),
                    (keep_high, "upper", high_cut),
                ):
                    kept = int(keep.sum())
                    if kept < min_support or kept == column.size:
                        continue
                    mean = float(inside_response[keep].mean())
                    if mean > best_mean:
                        best_mean = mean
                        best_update = (axis, bound, float(value))
            if best_update is None:
                break
            axis, bound, value = best_update
            if bound == "lower":
                lower[axis] = value
                mask &= points[:, axis] > value
            else:
                upper[axis] = value
                mask &= points[:, axis] < value
        return lower, upper

    def _paste(
        self,
        points: np.ndarray,
        response: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedily re-expand box faces while the mean response improves."""
        lower = lower.copy()
        upper = upper.copy()
        extent = points.max(axis=0) - points.min(axis=0)
        step = self.paste_alpha * np.maximum(extent, 1e-12)

        def box_mean(low: np.ndarray, up: np.ndarray) -> Tuple[float, int]:
            inside = np.all((points >= low) & (points <= up), axis=1)
            count = int(inside.sum())
            if count == 0:
                return -np.inf, 0
            return float(response[inside].mean()), count

        current_mean, _ = box_mean(lower, upper)
        improved = True
        iterations = 0
        while improved and iterations < 100:
            improved = False
            iterations += 1
            for axis in range(points.shape[1]):
                for direction in (-1, 1):
                    low_try = lower.copy()
                    up_try = upper.copy()
                    if direction < 0:
                        low_try[axis] -= step[axis]
                    else:
                        up_try[axis] += step[axis]
                    mean, count = box_mean(low_try, up_try)
                    if mean > current_mean and count > 0:
                        lower, upper = low_try, up_try
                        current_mean = mean
                        improved = True
        return lower, upper

    # ------------------------------------------------------------------ public API
    def find_boxes(self, points, response) -> List[PrimBox]:
        """Run the peel/paste/cover loop and return the discovered boxes."""
        points = check_array(points, name="points", ndim=2)
        response = check_array(response, name="response", ndim=1)
        check_same_length(points, response, names=("points", "response"))
        total_size = points.shape[0]
        min_support = max(1, int(np.ceil(self.mass_min * total_size)))

        remaining = np.ones(total_size, dtype=bool)
        boxes: List[PrimBox] = []
        while remaining.sum() >= max(2 * min_support, 10) and len(boxes) < self.max_boxes:
            active_points = points[remaining]
            active_response = response[remaining]
            lower, upper = self._peel(active_points, active_response, total_size)
            lower, upper = self._paste(active_points, active_response, lower, upper)

            inside_active = np.all((active_points >= lower) & (active_points <= upper), axis=1)
            support = int(inside_active.sum())
            if support == 0:
                break
            mean_response = float(active_response[inside_active].mean())
            if self.threshold is not None and mean_response < self.threshold:
                break
            boxes.append(
                PrimBox(
                    lower=lower,
                    upper=upper,
                    mean_response=mean_response,
                    support=support,
                    mass=support / total_size,
                )
            )
            # Covering: remove the box's points and look for the next bump.
            inside_full = np.zeros(total_size, dtype=bool)
            inside_full[np.flatnonzero(remaining)[inside_active]] = True
            remaining &= ~inside_full
        return boxes

    def find_regions(self, points, response) -> List[RegionProposal]:
        """Like :meth:`find_boxes` but returning :class:`RegionProposal` objects."""
        return [box.to_proposal() for box in self.find_boxes(points, response)]
