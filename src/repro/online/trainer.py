"""Folding harvested query-log pairs back into the surrogate.

:class:`IncrementalTrainer` owns the online training state — the cumulative
training workload, the fitted surrogate, the Eq. 5 satisfiability model and a
:class:`~repro.online.drift.DriftMonitor` — and exposes one operation:
:meth:`refresh`, which folds a batch of freshly harvested evaluations into all
three.  Two training paths exist:

* **incremental** (the default): warm-start boosting — the existing ensemble
  is kept and a few extra trees are fitted to its residuals on the enlarged
  workload (:meth:`~repro.surrogate.training.SurrogateTrainer.train_incremental`).
  Cheap: cost scales with ``warm_start_rounds``, not ``n_estimators``.
* **full refit**: a fresh estimator trained from scratch on the enlarged
  workload.  Used when the drift monitor reports that the surrogate's live
  residuals have blown past their training-time baseline (warm-started trees
  can chase a drifted workload for a while, but a structurally stale ensemble
  eventually needs rebuilding), or when the caller forces it.

Every produced model is a *new object*; nothing the caller may currently be
serving from is mutated, which is what lets :class:`repro.serve.SuRFService`
hot-swap the result atomically.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.satisfiability import SatisfiabilityModel
from repro.exceptions import NotFittedError, ValidationError
from repro.ml.metrics import root_mean_squared_error
from repro.online.drift import DriftMonitor
from repro.surrogate.model import SurrogateModel
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import RegionEvaluation, RegionWorkload


@dataclass(frozen=True)
class RefreshOutcome:
    """What one :meth:`IncrementalTrainer.refresh` call did.

    ``mode`` is ``"noop"`` (no new pairs — nothing rebuilt), ``"incremental"``
    (warm-start rounds) or ``"full"`` (fresh refit, drift-triggered or
    forced).  ``rmse_before``/``rmse_after`` are the surrogate's RMSE on the
    batch of new pairs, before and after folding them in — the live measure of
    how much the refresh helped on the traffic actually being served.
    ``drift_score``/``drifted`` describe the *pre-refresh* surrogate's rolling
    residuals — the evidence that drove the mode decision, not the refreshed
    model's quality (that is ``rmse_after``).
    """

    mode: str
    num_new_pairs: int
    workload_size: int
    drift_score: Optional[float]
    drifted: bool
    rmse_before: Optional[float]
    rmse_after: Optional[float]
    seconds: float


class IncrementalTrainer:
    """Maintains a surrogate + satisfiability model against a growing workload.

    Parameters
    ----------
    trainer:
        The :class:`~repro.surrogate.training.SurrogateTrainer` used for both
        paths (its estimator family and feature augmentation are reused).
    workload:
        The evaluations the surrogate was originally trained on.
    surrogate:
        The currently fitted surrogate for ``workload``.
    satisfiability:
        The Eq. 5 model for ``workload`` (rebuilt from targets when omitted).
    warm_start_rounds:
        Boosting rounds added per incremental refresh.
    drift_monitor:
        Rolling residual monitor; when omitted one is created with its
        baseline set to the surrogate's RMSE on ``workload``.
    full_refit_on_drift:
        Whether a drifted monitor escalates the refresh to a full refit.
    max_workload_size:
        Optional cap on the cumulative training workload; when exceeded the
        oldest evaluations are dropped (the Eq. 5 CDF keeps covering the full
        harvested history regardless).
    """

    def __init__(
        self,
        trainer: SurrogateTrainer,
        workload: RegionWorkload,
        surrogate: SurrogateModel,
        satisfiability: Optional[SatisfiabilityModel] = None,
        warm_start_rounds: int = 25,
        drift_monitor: Optional[DriftMonitor] = None,
        full_refit_on_drift: bool = True,
        max_workload_size: Optional[int] = None,
    ):
        if not isinstance(trainer, SurrogateTrainer):
            raise ValidationError(f"trainer must be a SurrogateTrainer, got {type(trainer)!r}")
        if warm_start_rounds < 1:
            raise ValidationError(f"warm_start_rounds must be >= 1, got {warm_start_rounds}")
        if max_workload_size is not None and max_workload_size < 1:
            raise ValidationError(f"max_workload_size must be >= 1, got {max_workload_size}")
        self.trainer = trainer
        self.warm_start_rounds = int(warm_start_rounds)
        self.full_refit_on_drift = bool(full_refit_on_drift)
        self.max_workload_size = max_workload_size
        self._workload = workload
        self._surrogate = surrogate
        self._satisfiability = (
            satisfiability
            if satisfiability is not None
            else SatisfiabilityModel.from_workload(workload)
        )
        if drift_monitor is None:
            drift_monitor = DriftMonitor()
        if drift_monitor.baseline_rmse is None:
            drift_monitor.rebaseline(self._surrogate.rmse(workload.features, workload.targets))
        self.drift_monitor = drift_monitor

    @classmethod
    def from_finder(cls, finder, **kwargs) -> "IncrementalTrainer":
        """Build from a fitted :class:`~repro.core.finder.SuRF`.

        The cumulative workload is reconstructed from the features/targets the
        finder stored at fit time (also carried by version-2 artifact
        bundles); a version-1 bundle has no targets and cannot seed an online
        loop.
        """
        if finder.surrogate_ is None or finder.workload_features_ is None:
            raise NotFittedError("IncrementalTrainer requires a fitted finder")
        if finder.workload_targets_ is None:
            raise NotFittedError(
                "this finder carries no workload targets (pre-v2 bundle?); "
                "refit it or construct IncrementalTrainer with an explicit workload"
            )
        features = np.asarray(finder.workload_features_, dtype=np.float64)
        targets = np.asarray(finder.workload_targets_, dtype=np.float64)
        dim = features.shape[1] // 2
        from repro.data.regions import Region

        workload = RegionWorkload(
            [
                RegionEvaluation(Region(vector[:dim], vector[dim:]), float(target))
                for vector, target in zip(features, targets)
            ]
        )
        return cls(
            trainer=finder.trainer,
            workload=workload,
            surrogate=finder.surrogate_,
            satisfiability=finder.satisfiability_,
            **kwargs,
        )

    # ------------------------------------------------------------------ state
    @property
    def workload(self) -> RegionWorkload:
        """The cumulative training workload."""
        return self._workload

    @property
    def surrogate(self) -> SurrogateModel:
        """The current surrogate."""
        return self._surrogate

    @property
    def satisfiability(self) -> SatisfiabilityModel:
        """The current Eq. 5 satisfiability model."""
        return self._satisfiability

    # ------------------------------------------------------------------ refreshing
    def refresh(
        self,
        new_evaluations: Sequence[RegionEvaluation],
        force_full: bool = False,
    ) -> RefreshOutcome:
        """Fold ``new_evaluations`` into the surrogate and Eq. 5 model.

        With no new pairs (and no ``force_full``) this is a strict no-op: the
        existing models are returned untouched, so anything serving from them
        stays bit-identical.  Not thread-safe against itself — callers
        (e.g. :meth:`repro.serve.SuRFService.refresh`) serialise refreshes.
        """
        start = time.perf_counter()
        new_evaluations = list(new_evaluations)
        if not new_evaluations and not force_full:
            return RefreshOutcome(
                mode="noop",
                num_new_pairs=0,
                workload_size=len(self._workload),
                drift_score=self.drift_monitor.drift_score,
                drifted=False,
                rmse_before=None,
                rmse_after=None,
                seconds=time.perf_counter() - start,
            )

        # The refresh is transactional: the monitor is updated on a copy and
        # committed only after training succeeds, so a failed refresh that is
        # retried (the service does not advance its log cursor on an error)
        # cannot observe the same residuals twice and inflate the drift score.
        monitor = copy.deepcopy(self.drift_monitor)
        rmse_before = None
        new_targets = np.empty(0)
        if new_evaluations:
            new_workload = RegionWorkload(new_evaluations)
            if new_workload.region_dim != self._workload.region_dim:
                raise ValidationError(
                    f"new evaluations are {new_workload.region_dim}-dimensional, "
                    f"workload is {self._workload.region_dim}-dimensional"
                )
            predictions = self._surrogate.predict(new_workload.features)
            new_targets = new_workload.targets
            finite = np.isfinite(new_targets) & np.isfinite(predictions)
            if finite.any():
                rmse_before = root_mean_squared_error(new_targets[finite], predictions[finite])
            monitor.observe(predictions, new_targets)
            merged = self._workload.merged_with(new_workload)
        else:
            merged = self._workload
        if self.max_workload_size is not None and len(merged) > self.max_workload_size:
            recent = list(merged)[-self.max_workload_size :]
            merged = RegionWorkload(recent)

        drifted = monitor.drifted
        drift_score = monitor.drift_score
        if force_full or (drifted and self.full_refit_on_drift):
            mode = "full"
            surrogate = self.trainer.train(merged)
            monitor.rebaseline(surrogate.rmse(merged.features, merged.targets))
        else:
            mode = "incremental"
            surrogate = self.trainer.train_incremental(
                self._surrogate, merged, extra_rounds=self.warm_start_rounds
            )
        self.drift_monitor = monitor

        rmse_after = None
        if new_evaluations:
            predictions = surrogate.predict(new_workload.features)
            finite = np.isfinite(new_targets) & np.isfinite(predictions)
            if finite.any():
                rmse_after = root_mean_squared_error(new_targets[finite], predictions[finite])
            self._satisfiability = self._satisfiability.extended_with(new_targets)

        self._workload = merged
        self._surrogate = surrogate
        return RefreshOutcome(
            mode=mode,
            num_new_pairs=len(new_evaluations),
            workload_size=len(merged),
            drift_score=drift_score,
            drifted=drifted,
            rmse_before=rmse_before,
            rmse_after=rmse_after,
            seconds=time.perf_counter() - start,
        )
