"""Rolling surrogate-residual drift detection for the online learning loop.

The surrogate ``f̂`` is only as good as the workload it was trained on; when
the query traffic (or the underlying data) drifts, exact evaluations harvested
from the query log start disagreeing with the surrogate's predictions.
:class:`DriftMonitor` watches exactly that signal: it keeps a rolling window
of prediction residuals ``ŷ - y`` and compares the window's RMSE against the
baseline RMSE the surrogate had when it was (re)trained.

Knobs
-----
``window``
    How many of the most recent residuals the rolling RMSE is computed over.
``threshold``
    Drift fires when ``rolling RMSE > threshold × baseline RMSE``.  2.0 means
    "the surrogate is now twice as wrong as it was at training time".
``min_observations``
    Residuals needed in the window before drift may fire at all — guards
    against a handful of unlucky pairs tripping a full refit.
``baseline_rmse``
    The reference error level.  Set it from the training report (or let
    :class:`~repro.online.trainer.IncrementalTrainer` measure it on the
    training workload); :meth:`rebaseline` resets it after a refit.

The window deliberately spans *incremental* refreshes: each batch's residuals
are measured out-of-sample against the surrogate serving at the time, before
the pairs are folded in, so if the rolling RMSE stays elevated across several
warm-start refreshes the ensemble genuinely is not keeping up and escalation
to a full refit is exactly what should happen.  Only a full refit (which
resets the model structurally) clears the window, via :meth:`rebaseline`.

A mean shift of ``s`` in the statistic inflates the residual RMSE to roughly
``sqrt(baseline² + s²)``, so with the default ``threshold=2.0`` any shift
larger than ``√3 ≈ 1.7`` baseline-RMSEs triggers the full-refit fallback.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError

#: Floor applied to the baseline RMSE so a perfectly-fitting surrogate
#: (baseline 0) does not make every later residual look like infinite drift.
_BASELINE_FLOOR = 1e-12


class DriftMonitor:
    """Rolling-window residual monitor that flags surrogate drift.

    Feed it ``(predictions, targets)`` batches with :meth:`observe` as exact
    evaluations arrive; read :attr:`drifted` to decide between a cheap
    warm-start refresh and a full refit.  Not thread-safe on its own — the
    online trainer serialises access.
    """

    def __init__(
        self,
        window: int = 200,
        threshold: float = 2.0,
        min_observations: int = 30,
        baseline_rmse: Optional[float] = None,
    ):
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        if threshold <= 0:
            raise ValidationError(f"threshold must be > 0, got {threshold}")
        if min_observations < 1:
            raise ValidationError(f"min_observations must be >= 1, got {min_observations}")
        if baseline_rmse is not None and (not np.isfinite(baseline_rmse) or baseline_rmse < 0):
            raise ValidationError(f"baseline_rmse must be finite and >= 0, got {baseline_rmse}")
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_observations = int(min_observations)
        self._baseline_rmse = float(baseline_rmse) if baseline_rmse is not None else None
        self._residuals: "deque[float]" = deque(maxlen=self.window)
        self._total_observed = 0

    # ------------------------------------------------------------------ state
    @property
    def baseline_rmse(self) -> Optional[float]:
        """The reference RMSE drift is measured against (``None`` until set)."""
        return self._baseline_rmse

    @property
    def num_observations(self) -> int:
        """Residuals currently inside the rolling window."""
        return len(self._residuals)

    @property
    def total_observed(self) -> int:
        """Residuals ever observed (including those rolled out of the window)."""
        return self._total_observed

    # ------------------------------------------------------------------ feeding
    def observe(self, predictions, targets) -> None:
        """Append the residuals of a batch of exact evaluations to the window.

        Non-finite pairs (an engine may report NaN for degenerate regions) are
        skipped rather than poisoning the rolling RMSE.
        """
        predictions = np.asarray(predictions, dtype=np.float64).ravel()
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if predictions.shape != targets.shape:
            raise ValidationError(
                f"predictions and targets must align, got {predictions.shape} and {targets.shape}"
            )
        residuals = predictions - targets
        for residual in residuals[np.isfinite(residuals)]:
            self._residuals.append(float(residual))
            self._total_observed += 1

    def rebaseline(self, baseline_rmse: float) -> None:
        """Reset after a (re)fit: clear the window and install a new baseline."""
        if not np.isfinite(baseline_rmse) or baseline_rmse < 0:
            raise ValidationError(f"baseline_rmse must be finite and >= 0, got {baseline_rmse}")
        self._baseline_rmse = float(baseline_rmse)
        self._residuals.clear()

    # ------------------------------------------------------------------ reading
    @property
    def rolling_rmse(self) -> Optional[float]:
        """RMSE of the residuals currently in the window (``None`` when empty)."""
        if not self._residuals:
            return None
        residuals = np.asarray(self._residuals)
        return float(np.sqrt(np.mean(residuals**2)))

    @property
    def drift_score(self) -> Optional[float]:
        """``rolling RMSE / baseline RMSE`` — ``None`` until both are known."""
        rolling = self.rolling_rmse
        if rolling is None or self._baseline_rmse is None:
            return None
        return rolling / max(self._baseline_rmse, _BASELINE_FLOOR)

    @property
    def drifted(self) -> bool:
        """Whether the surrogate's live error exceeds ``threshold ×`` its baseline."""
        if len(self._residuals) < self.min_observations:
            return False
        score = self.drift_score
        return score is not None and score > self.threshold
