"""The query log: harvested ``([x, l], y)`` pairs that close the serve→learn loop.

The paper trains the surrogate on "pairs ``([x, l], y)`` harvested from the
query log".  :class:`QueryLog` is that log as a first-class object: an
append-only, capacity-capped ring buffer of exact region evaluations.  The
serving layer records every exact evaluation it triggers (when it is wired to
a ground-truth back-end), deployments push externally observed pairs in with
:meth:`record`, and :class:`~repro.online.trainer.IncrementalTrainer` drains
the log through :meth:`since` to fold new pairs into the surrogate.

Persistence reuses the workload ``.npz`` layout
(:func:`repro.surrogate.persistence.save_workload`), so a saved log is a valid
training workload and vice versa — the offline and online training paths share
one on-disk format.
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.regions import Region
from repro.exceptions import ValidationError
from repro.surrogate.workload import RegionEvaluation, RegionWorkload


class QueryLog:
    """Append-only, capped, thread-safe buffer of exact region evaluations.

    Parameters
    ----------
    capacity:
        Maximum number of evaluations retained.  Once full, recording a new
        pair drops the oldest one (ring-buffer semantics); :attr:`dropped`
        counts how many have been discarded this way.
    region_dim:
        Expected region dimensionality.  When omitted it is pinned by the
        first recorded evaluation; every later record must match.

    The log never exceeds ``capacity`` entries, and :attr:`total_recorded`
    grows monotonically — consumers track their position in that monotone
    stream and call :meth:`since` to fetch only what they have not seen yet.
    """

    def __init__(self, capacity: int = 100_000, region_dim: Optional[int] = None):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if region_dim is not None and region_dim < 1:
            raise ValidationError(f"region_dim must be >= 1, got {region_dim}")
        self._capacity = int(capacity)
        self._region_dim = int(region_dim) if region_dim is not None else None
        self._entries: "deque[RegionEvaluation]" = deque(maxlen=self._capacity)
        self._total_recorded = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ introspection
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum number of evaluations the log retains."""
        return self._capacity

    @property
    def region_dim(self) -> Optional[int]:
        """Region dimensionality of the logged pairs (``None`` until first record)."""
        with self._lock:
            return self._region_dim

    @property
    def total_recorded(self) -> int:
        """How many evaluations were ever recorded (monotone, never decreases)."""
        with self._lock:
            return self._total_recorded

    @property
    def dropped(self) -> int:
        """How many evaluations the ring buffer has discarded to stay capped."""
        with self._lock:
            return self._total_recorded - len(self._entries)

    # ------------------------------------------------------------------ recording
    def _check_dim(self, dim: int) -> None:
        if self._region_dim is None:
            self._region_dim = int(dim)
        elif dim != self._region_dim:
            raise ValidationError(
                f"query log holds {self._region_dim}-dimensional evaluations, got {dim}"
            )

    def record(self, region: Region, value: float) -> None:
        """Record one exact evaluation ``(region, y)``."""
        self.record_evaluation(RegionEvaluation(region, float(value)))

    def record_vector(self, vector, value: float) -> None:
        """Record one exact evaluation given as an ``[x, l]`` solution vector."""
        self.record_evaluation(
            RegionEvaluation(Region.from_vector(np.asarray(vector, dtype=np.float64)), float(value))
        )

    def record_evaluation(self, evaluation: RegionEvaluation) -> None:
        """Record one :class:`~repro.surrogate.workload.RegionEvaluation`."""
        if not np.isfinite(evaluation.value):
            raise ValidationError(f"logged statistic values must be finite, got {evaluation.value}")
        with self._lock:
            self._check_dim(evaluation.region.dim)
            self._entries.append(evaluation)
            self._total_recorded += 1

    def record_many(self, evaluations: Sequence[RegionEvaluation]) -> None:
        """Record a batch of evaluations in order (one lock acquisition).

        The batch is all-or-nothing: values and dimensionalities are validated
        up front, so a bad entry in the middle cannot leave a half-recorded
        batch behind (a caller retrying the whole batch would otherwise feed
        duplicated pairs into the next refresh).
        """
        evaluations = list(evaluations)
        for evaluation in evaluations:
            if not np.isfinite(evaluation.value):
                raise ValidationError(
                    f"logged statistic values must be finite, got {evaluation.value}"
                )
        with self._lock:
            expected = self._region_dim
            for evaluation in evaluations:
                dim = evaluation.region.dim
                if expected is None:
                    expected = dim
                elif dim != expected:
                    raise ValidationError(
                        f"query log holds {expected}-dimensional evaluations, got {dim}"
                    )
            if evaluations:
                self._region_dim = expected
            for evaluation in evaluations:
                self._entries.append(evaluation)
                self._total_recorded += 1

    def extend_from_workload(self, workload: RegionWorkload) -> None:
        """Record every evaluation of a workload (e.g. replaying an old log)."""
        self.record_many(list(workload))

    # ------------------------------------------------------------------ consumption
    def since(self, cursor: int) -> Tuple[List[RegionEvaluation], int]:
        """Evaluations recorded after position ``cursor``, plus the new cursor.

        ``cursor`` is a :attr:`total_recorded` watermark (0 for "everything").
        Evaluations that were dropped by the ring buffer before being consumed
        are gone — the caller receives whatever is still retained, oldest
        first, and the returned cursor accounts for the loss.
        """
        if cursor < 0:
            raise ValidationError(f"cursor must be >= 0, got {cursor}")
        with self._lock:
            oldest_retained = self._total_recorded - len(self._entries)
            skip = max(0, cursor - oldest_retained)
            fresh = list(self._entries)[skip:]
            return fresh, self._total_recorded

    def snapshot(self) -> List[RegionEvaluation]:
        """A point-in-time copy of every retained evaluation, oldest first."""
        with self._lock:
            return list(self._entries)

    def as_workload(self) -> RegionWorkload:
        """The retained evaluations as a training workload (raises when empty)."""
        entries = self.snapshot()
        if not entries:
            raise ValidationError("the query log is empty; nothing to train on")
        return RegionWorkload(entries)

    def clear(self) -> None:
        """Drop every retained evaluation (``total_recorded`` is kept monotone)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ persistence
    def save(self, path) -> Path:
        """Write the retained evaluations to ``path`` in the workload ``.npz`` layout.

        The file is interchangeable with
        :func:`repro.surrogate.persistence.save_workload` output: a saved log
        loads as a training workload and a saved workload loads as a log.
        """
        from repro.surrogate.persistence import save_workload

        return save_workload(self.as_workload(), path)

    @classmethod
    def load(cls, path, capacity: int = 100_000) -> "QueryLog":
        """Rebuild a log from a workload ``.npz`` archive written by :meth:`save`.

        When the archive holds more evaluations than ``capacity``, only the
        most recent ones are retained — exactly what recording them one by one
        into a fresh log would leave behind.
        """
        from repro.surrogate.persistence import load_workload

        workload = load_workload(path)
        log = cls(capacity=capacity, region_dim=workload.region_dim)
        log.extend_from_workload(workload)
        return log
