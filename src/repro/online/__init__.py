"""Online learning loop: query-log harvesting, incremental refresh, hot swap.

The paper's surrogate is trained on "pairs ``([x, l], y)`` harvested from the
query log"; this package closes that loop for a live deployment:

1. :class:`QueryLog` — an append-only, capped ring buffer of exact region
   evaluations, recorded by the serving layer (and by anything else that
   observes ground truth), persisted in the same ``.npz`` layout as training
   workloads.
2. :class:`IncrementalTrainer` — folds logged pairs into the surrogate with
   warm-start boosting rounds, escalating to a full refit when the
   :class:`DriftMonitor`'s rolling residuals say the model has drifted, and
   refreshes the Eq. 5 satisfiability CDF from the enlarged sample.
3. :class:`RefreshPolicy` — a background thread that triggers
   :meth:`repro.serve.SuRFService.refresh` once enough new pairs accumulate;
   the service hot-swaps the refreshed models atomically under its lock.
"""

from repro.online.drift import DriftMonitor
from repro.online.policy import RefreshPolicy
from repro.online.query_log import QueryLog
from repro.online.trainer import IncrementalTrainer, RefreshOutcome

__all__ = [
    "QueryLog",
    "DriftMonitor",
    "IncrementalTrainer",
    "RefreshOutcome",
    "RefreshPolicy",
]
