"""Background refresh scheduling for an online :class:`~repro.serve.SuRFService`.

A deployment does not want to call ``service.refresh()`` by hand;
:class:`RefreshPolicy` runs a daemon thread that wakes up every
``interval_seconds``, checks how many harvested pairs the service has not yet
folded into its surrogate, and triggers a refresh once ``min_new_pairs`` have
accumulated.  The refresh itself happens on the policy thread — serving
threads are never blocked by training, only by the microsecond-scale pointer
swap at the end of it.

Use it as a context manager::

    with RefreshPolicy(service, interval_seconds=30.0, min_new_pairs=200):
        ...  # serve traffic; refreshes happen in the background

Errors raised by a background refresh are captured on :attr:`last_error`
(with :attr:`num_errors` counting them) and the most recent one is re-raised
by :meth:`stop`; the loop itself keeps running after a failure and retries on
the next tick, so a transient training error cannot silently freeze the model
at an ever-staler generation.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.exceptions import ValidationError


class RefreshPolicy:
    """Periodically refreshes a service once enough new pairs are logged.

    Parameters
    ----------
    service:
        Anything exposing ``pending_log_entries`` and ``refresh()`` — a
        :class:`~repro.serve.SuRFService` or
        :class:`~repro.api.kernel.ServiceKernel` configured with a query
        log, or a whole :class:`~repro.api.tenancy.ModelRegistry` (refreshed
        fleet-wide via ``refresh_all``).
    interval_seconds:
        How often the policy thread checks the log.
    min_new_pairs:
        Unconsumed pairs required before a refresh is triggered (1 refreshes
        on any new data).
    """

    def __init__(self, service, interval_seconds: float = 60.0, min_new_pairs: int = 100):
        if interval_seconds <= 0:
            raise ValidationError(f"interval_seconds must be > 0, got {interval_seconds}")
        if min_new_pairs < 1:
            raise ValidationError(f"min_new_pairs must be >= 1, got {min_new_pairs}")
        self.service = service
        self.interval_seconds = float(interval_seconds)
        self.min_new_pairs = int(min_new_pairs)
        self.num_refreshes = 0
        self.num_errors = 0
        self.last_outcome = None
        self.last_error: Optional[BaseException] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "RefreshPolicy":
        """Launch the background thread (idempotent while running)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="surf-refresh-policy", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0, reraise: bool = True) -> None:
        """Stop the thread, wait for it, and re-raise any background error.

        If the thread is still mid-refresh when ``timeout`` expires the handle
        is kept, so :attr:`running` stays truthful, a repeated ``stop()`` can
        join again, and a premature ``start()`` cannot launch a second policy
        thread alongside the one still finishing.  With ``reraise=False`` a
        captured background error stays on :attr:`last_error` for later
        inspection instead of being raised (and cleared) here.
        """
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            if not thread.is_alive():
                self._thread = None
        if reraise and self.last_error is not None:
            error, self.last_error = self.last_error, None
            raise error

    def __enter__(self) -> "RefreshPolicy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Don't mask an in-flight exception with a background one — but don't
        # lose the background error either: when the with-body raised, the
        # refresh failure is kept on last_error for the caller to inspect.
        self.stop(reraise=exc is None)

    # ------------------------------------------------------------------ the loop
    def run_once(self) -> bool:
        """One policy tick: refresh if enough pairs are pending.  Returns whether it did."""
        if self.service.pending_log_entries < self.min_new_pairs:
            return False
        # A ModelRegistry exposes the same pending_log_entries surface but
        # refreshes fleet-wide; a single kernel/service refreshes itself.
        if hasattr(self.service, "refresh_all"):
            self.last_outcome = self.service.refresh_all()
        else:
            self.last_outcome = self.service.refresh()
        self.num_refreshes += 1
        return True

    def _run(self) -> None:
        # A failed refresh (e.g. a transient training error) must not kill the
        # loop: the thread records the error for stop() and keeps trying on
        # the next tick — dying here would silently serve an ever-staler
        # model, the exact failure mode this policy exists to prevent.
        while not self._stop_event.wait(self.interval_seconds):
            try:
                self.run_once()
            except BaseException as error:  # noqa: BLE001 - surfaced via stop()
                self.last_error = error
                self.num_errors += 1
