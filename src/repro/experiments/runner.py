"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments.runner fig3 table1 --scale small
    python -m repro.experiments.runner all --scale medium

Each requested experiment is executed at the chosen scale and its rows are
printed as plain-text tables (the same series reported by the paper).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List

from repro.experiments import EXPERIMENTS
from repro.experiments.config import SCALES, get_scale
from repro.experiments.reporting import format_table


def _print_result(name: str, outcome) -> None:
    if isinstance(outcome, list):
        print(format_table(outcome, title=f"\n=== {name} ==="))
        return
    if isinstance(outcome, dict):
        printable = {}
        nested_tables = {}
        for key, value in outcome.items():
            if isinstance(value, list) and value and isinstance(value[0], dict):
                nested_tables[key] = value
            elif not hasattr(value, "shape"):
                printable[key] = value
        if printable:
            rows = [{"metric": key, "value": value} for key, value in printable.items()]
            print(format_table(rows, title=f"\n=== {name} ==="))
        for key, rows in nested_tables.items():
            print(format_table(rows, title=f"\n=== {name}: {key} ==="))
        return
    print(f"\n=== {name} ===\n{outcome}")


def run_experiments(names: Iterable[str], scale_name: str) -> List[str]:
    """Run the named experiments at ``scale_name``; returns the list of names run."""
    scale = get_scale(scale_name)
    executed = []
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        outcome = module.run(scale=scale)
        elapsed = time.perf_counter() - start
        _print_result(f"{name} ({elapsed:.1f}s, scale={scale.name})", outcome)
        executed.append(name)
    return executed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Re-run the SuRF paper's experiments and print their tables/series.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids to run ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale profile (default: small)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    names = list(args.experiments)
    if names == ["all"]:
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    run_experiments(names, args.scale)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
