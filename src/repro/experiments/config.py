"""Shared experiment scaling knobs.

The paper's full settings (10⁷-row tables, 300 k-query workloads, 3 000-second
timeouts) are impractical for CI; every experiment accepts an
:class:`ExperimentScale` that multiplies dataset sizes, workload sizes and
swarm budgets.  ``SMALL`` is the default used by the test-suite and the
benchmark harness; ``PAPER`` approximates the published setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling profile for experiment runners.

    Attributes
    ----------
    num_points:
        Rows in the synthetic datasets used by accuracy experiments.
    workload_size:
        Past region evaluations used to train surrogates (base value for d=1;
        runners scale it up with dimensionality).
    num_particles / num_iterations:
        Swarm budget for the GSO-based methods.
    naive_max_candidates:
        Cap on the number of candidate regions the Naive baseline evaluates.
    time_budget_seconds:
        Per-method wall-clock budget for the scalability experiment.
    """

    name: str
    num_points: int
    workload_size: int
    num_particles: int
    num_iterations: int
    naive_max_candidates: int
    time_budget_seconds: float

    def __post_init__(self) -> None:
        if self.num_points < 100:
            raise ValidationError("num_points must be at least 100")
        if self.workload_size < 50:
            raise ValidationError("workload_size must be at least 50")


#: Fast profile used by tests and the default benchmark runs.
SMALL = ExperimentScale(
    name="small",
    num_points=4_000,
    workload_size=600,
    num_particles=60,
    num_iterations=40,
    naive_max_candidates=800,
    time_budget_seconds=5.0,
)

#: Intermediate profile for a more faithful (but still laptop-scale) run.
MEDIUM = ExperimentScale(
    name="medium",
    num_points=12_000,
    workload_size=3_000,
    num_particles=100,
    num_iterations=100,
    naive_max_candidates=10_000,
    time_budget_seconds=60.0,
)

#: Approximation of the paper's settings (hours of compute).
PAPER = ExperimentScale(
    name="paper",
    num_points=100_000,
    workload_size=20_000,
    num_particles=100,
    num_iterations=100,
    naive_max_candidates=10_000_000,
    time_budget_seconds=3_000.0,
)

SCALES = {scale.name: scale for scale in (SMALL, MEDIUM, PAPER)}


def get_scale(name_or_scale) -> ExperimentScale:
    """Resolve a scale by name (``"small"``, ``"medium"``, ``"paper"``) or pass-through."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    key = str(name_or_scale).lower()
    if key not in SCALES:
        raise ValidationError(f"unknown scale {name_or_scale!r}; available: {sorted(SCALES)}")
    return SCALES[key]
