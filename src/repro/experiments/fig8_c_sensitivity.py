"""Figure 8 — sensitivity of the size-regularisation parameter ``c``.

The paper spreads a fixed set of candidate solutions uniformly over the
solution space of a d = 1, k = 1 dataset and, for growing ``c``, counts how
many of them lie within a small radius of the objective's global peak: the
share of such "viable" solutions shrinks as ``c`` concentrates the optimum on
ever smaller regions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.objective import make_objective
from repro.core.query import RegionQuery
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.utils.rng import ensure_rng


def run(
    scale: ExperimentScale = SMALL,
    c_values: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    num_solutions: int = 800,
    radius: float = 0.2,
    random_state: int = 13,
) -> List[Dict]:
    """Return, per ``c``, the fraction of uniform solutions within ``radius`` of the peak."""
    scale = get_scale(scale)
    synthetic = common.make_dataset("density", dim=1, num_regions=1, scale=scale, random_state=random_state)
    engine = common.build_engine(synthetic)
    threshold = synthetic.suggested_threshold()

    rng = ensure_rng(random_state)
    solutions = np.column_stack(
        [rng.uniform(0.0, 1.0, size=num_solutions), rng.uniform(0.01, 0.5, size=num_solutions)]
    )

    rows: List[Dict] = []
    for c in c_values:
        query = RegionQuery(threshold=threshold, direction="above", size_penalty=float(c))
        objective = make_objective("log", engine.evaluate_vector, query)
        values = objective.evaluate_batch(solutions)
        defined = np.isfinite(values)
        if not np.any(defined):
            rows.append({"c": float(c), "viable_fraction": 0.0, "num_solutions": num_solutions})
            continue
        peak = solutions[int(np.argmax(np.where(defined, values, -np.inf)))]
        distances = np.linalg.norm(solutions - peak, axis=1)
        viable = defined & (distances <= radius)
        rows.append(
            {
                "c": float(c),
                "viable_fraction": float(np.mean(viable)),
                "num_solutions": num_solutions,
            }
        )
    return rows
