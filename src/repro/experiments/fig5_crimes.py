"""Figure 5 — qualitative analysis on the Crimes(-like) spatial dataset.

The paper trains a surrogate on the Chicago Crimes data, asks for regions whose
crime count exceeds the third quartile ``Q3`` of a random-region sample, and
reports that 100 % of the proposed regions also satisfy the constraint under
the true function.  This runner reproduces that protocol on the Crimes-like
synthetic stand-in (see DESIGN.md for the substitution) and additionally
checks how many proposals land on a planted hot-spot.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.evaluation import compliance_rate, match_to_ground_truth
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.real import crimes_hotspot_regions, make_crimes_like
from repro.data.statistics import CountStatistic
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.surrogate.workload import generate_workload


def run(
    scale: ExperimentScale = SMALL,
    random_state: int = 5,
    backend: Optional[str] = None,
    backend_options: Optional[Dict] = None,
) -> Dict:
    """Run the Crimes qualitative experiment and return its summary metrics.

    ``backend``/``backend_options`` choose the :mod:`repro.backends` engine
    the workload generation, thresholding sample and compliance checks scan;
    all backends are bit-identical, so the reported metrics do not depend on
    the choice.
    """
    scale = get_scale(scale)
    crimes = make_crimes_like(num_points=max(scale.num_points, 5_000), random_state=random_state)
    engine = DataEngine(
        crimes, CountStatistic(), backend=backend, backend_options=backend_options
    )

    # Threshold: third quartile of the statistic over random neighbourhood-sized
    # regions (the paper's y_R = Q3 protocol).
    sample = engine.statistic_sample(200, random_state=random_state, max_fraction=0.05)
    threshold = float(np.quantile(sample, 0.75))
    query = RegionQuery(threshold=threshold, direction="above", size_penalty=4.0)

    finder, workload_size = common.fit_surf(engine, scale, random_state)
    result = finder.find_regions(query)

    hotspots = crimes_hotspot_regions()
    hotspot_iou = match_to_ground_truth(result.proposals, hotspots)
    summary = {
        "backend": engine.backend.name,
        "threshold": threshold,
        "workload_size": workload_size,
        "num_proposals": result.num_regions,
        "compliance": compliance_rate(result.proposals, engine, query),
        "surrogate_feasible_fraction": result.optimization.feasible_fraction,
        "best_hotspot_iou": max(hotspot_iou) if hotspot_iou else 0.0,
        "mean_hotspot_iou": float(np.mean(hotspot_iou)) if hotspot_iou else 0.0,
        "elapsed_seconds": result.elapsed_seconds,
    }
    engine.close()
    return summary
