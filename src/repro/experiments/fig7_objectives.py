"""Figure 7 — the log objective (Eq. 4) vs the ratio objective (Eq. 2) landscape.

The paper visualises both objectives over the 2-dim (x₁, l₁) solution space of
a d = 1, k = 3 dataset for c ∈ {1, 2, 3, 4}: the log objective is undefined on
infeasible regions (white area) while the ratio objective stays defined and can
mislead the swarm.  This runner evaluates both objectives on a regular grid and
reports, per (objective, c): the fraction of the grid where the objective is
defined, and whether the grid's best cell lies inside a ground-truth region.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.objective import make_objective
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale


def _solution_grid(num_centers: int, num_lengths: int) -> np.ndarray:
    centers = np.linspace(0.02, 0.98, num_centers)
    lengths = np.linspace(0.01, 0.5, num_lengths)
    grid = np.array([[x, l] for x in centers for l in lengths])
    return grid


def run(
    scale: ExperimentScale = SMALL,
    c_values: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
    num_centers: int = 40,
    num_lengths: int = 30,
    random_state: int = 9,
) -> List[Dict]:
    """Evaluate both objectives over the (x₁, l₁) grid for each ``c``."""
    scale = get_scale(scale)
    synthetic = common.make_dataset("density", dim=1, num_regions=3, scale=scale, random_state=random_state)
    engine = common.build_engine(synthetic)
    threshold = synthetic.suggested_threshold()
    grid = _solution_grid(num_centers, num_lengths)
    gt_centers = np.asarray([gt.region.center[0] for gt in synthetic.ground_truth])
    gt_half = float(synthetic.ground_truth[0].region.half_lengths[0])

    rows: List[Dict] = []
    for c in c_values:
        query = RegionQuery(threshold=threshold, direction="above", size_penalty=float(c))
        for kind in ("log", "ratio"):
            objective = make_objective(kind, engine.evaluate_vector, query)
            values = objective.evaluate_batch(grid)
            defined = np.isfinite(values)
            if np.any(defined):
                best_index = int(np.argmax(np.where(defined, values, -np.inf)))
                best_center = grid[best_index, 0]
                best_on_ground_truth = bool(np.any(np.abs(gt_centers - best_center) <= gt_half))
            else:
                best_on_ground_truth = False
            rows.append(
                {
                    "objective": kind,
                    "c": float(c),
                    "defined_fraction": float(np.mean(defined)),
                    "best_on_ground_truth": best_on_ground_truth,
                    "grid_size": grid.shape[0],
                }
            )
    return rows
