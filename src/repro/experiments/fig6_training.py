"""Figure 6 — surrogate training overhead vs workload size, with/without hyper-tuning.

The paper trains XGBoost surrogates on 10 k–388 k past queries and shows that
grid-search hyper-tuning dominates the cost (the 144-combination grid).  This
runner sweeps workload sizes (scaled down by default), trains the gradient-
boosted surrogate with and without grid search and records the wall-clock
training time and the resulting hold-out RMSE.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.data.engine import DataEngine
from repro.data.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.surrogate.training import SurrogateTrainer, default_param_grid
from repro.surrogate.workload import generate_workload


def run(
    scale: ExperimentScale = SMALL,
    workload_sizes: Sequence[int] = (200, 500, 1_000),
    hypertune_options: Sequence[bool] = (False, True),
    random_state: int = 3,
) -> List[Dict]:
    """Measure surrogate training time for each workload size and tuning option."""
    scale = get_scale(scale)
    synthetic = make_synthetic_dataset(
        SyntheticConfig(statistic="density", dim=2, num_regions=1, num_points=scale.num_points, random_state=random_state)
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    largest = max(workload_sizes)
    workload = generate_workload(engine, largest, random_state=random_state)

    rows: List[Dict] = []
    for size in sorted(workload_sizes):
        subset = workload.subset(size, random_state=random_state) if size < largest else workload
        for hypertune in hypertune_options:
            trainer = SurrogateTrainer(
                hypertune=hypertune,
                param_grid=default_param_grid(small=True),
                cv=3,
                random_state=random_state,
            )
            trainer.train(subset)
            report = trainer.last_report_
            rows.append(
                {
                    "workload_size": size,
                    "hypertuned": hypertune,
                    "training_seconds": report.training_seconds,
                    "test_rmse": report.test_rmse,
                    "grid_combinations": (
                        len(trainer.param_grid) and _grid_size(trainer.param_grid) if hypertune else 1
                    ),
                }
            )
    return rows


def _grid_size(param_grid) -> int:
    size = 1
    for values in param_grid.values():
        size *= len(values)
    return size
