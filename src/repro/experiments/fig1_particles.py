"""Figure 1 — converged particle positions in the 2-dim region solution space.

The paper runs GSO (via the surrogate) on a 1-dimensional density dataset with
``y_R = 1080`` and reports that 84 % of the particles converge to regions
satisfying the constraint under the *true* function.  This runner reproduces
the quantitative part of the figure: the fraction of converged particles whose
true statistic satisfies the constraint, plus the final particle cloud for
anyone who wants to plot it.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.evaluation import compliance_rate
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale


def run(scale: ExperimentScale = SMALL, random_state: int = 7) -> Dict:
    """Run the Figure 1 experiment and return summary statistics.

    Returns a dict with the swarm's feasible fraction under the surrogate, the
    fraction of final particles whose *true* statistic satisfies the query
    (the 84 % figure in the paper), and the raw particle positions.
    """
    scale = get_scale(scale)
    synthetic = common.make_dataset("density", dim=1, num_regions=3, scale=scale, random_state=random_state)
    engine = common.build_engine(synthetic)
    finder, workload_size = common.fit_surf(engine, scale, random_state)
    query = common.default_query(synthetic)

    result = finder.find_regions(query)
    optimization = result.optimization

    true_values = engine.evaluate_batch(optimization.positions)
    satisfied = np.asarray([query.satisfied_by(value) for value in true_values])

    return {
        "threshold": query.threshold,
        "workload_size": workload_size,
        "num_particles": optimization.positions.shape[0],
        "iterations": optimization.num_iterations,
        "surrogate_feasible_fraction": optimization.feasible_fraction,
        "true_satisfied_fraction": float(np.mean(satisfied)),
        "proposal_compliance": compliance_rate(result.proposals, engine, query),
        "num_proposals": result.num_regions,
        "initial_positions": optimization.initial_positions,
        "final_positions": optimization.positions,
        "fitness": optimization.fitness,
    }
