"""Experiment runners reproducing every table and figure of the paper's evaluation.

Each module exposes a ``run(...)`` function whose defaults are scaled down so
the whole suite finishes on a laptop in minutes; pass larger parameters (or a
:class:`repro.experiments.config.ExperimentScale`) to approach the paper's
settings.  Every runner returns plain rows (lists of dicts) so the benchmark
harness and the examples can print exactly the series the paper reports.
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import format_table, summarize_rows
from repro.experiments import (
    fig1_particles,
    fig3_accuracy,
    fig4_aggregates,
    fig5_crimes,
    fig6_training,
    fig7_objectives,
    fig8_c_sensitivity,
    fig9_convergence,
    fig10_gso_cost,
    fig11_surrogate_quality,
    fig12_model_complexity,
    table1_scalability,
)

#: Registry mapping experiment identifiers to their runner modules.
EXPERIMENTS = {
    "fig1": fig1_particles,
    "fig3": fig3_accuracy,
    "fig4": fig4_aggregates,
    "fig5": fig5_crimes,
    "fig6": fig6_training,
    "fig7": fig7_objectives,
    "fig8": fig8_c_sensitivity,
    "fig9": fig9_convergence,
    "fig10": fig10_gso_cost,
    "fig11": fig11_surrogate_quality,
    "fig12": fig12_model_complexity,
    "table1": table1_scalability,
}

__all__ = ["EXPERIMENTS", "ExperimentScale", "format_table", "summarize_rows"]
