"""Figure 10 — SuRF-GSO mining time vs dimensionality, swarm size and iterations.

The paper reports that, driven by the surrogate, the optimisation stays under
~15 seconds even with 500 glowworms or 400 iterations, growing roughly
linearly in both (the quadratic term is negligible because prediction time
dominates).  This runner measures the wall-clock time of ``find_regions`` for
a grid of (data dimensionality × swarm size) and (data dimensionality ×
iteration budget) settings.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.optim.gso import GSOParameters


def run(
    scale: ExperimentScale = SMALL,
    dims: Sequence[int] = (1, 2, 3),
    particle_counts: Sequence[int] = (50, 100, 200),
    iteration_counts: Sequence[int] = (50, 100, 200),
    random_state: int = 19,
) -> List[Dict]:
    """Time the surrogate-driven GSO for each setting; one row per run."""
    scale = get_scale(scale)
    rows: List[Dict] = []
    for dim in dims:
        synthetic = common.make_dataset("density", dim, 1, scale, random_state + dim)
        engine = common.build_engine(synthetic)
        finder, _ = common.fit_surf(engine, scale, random_state)
        query = common.default_query(synthetic)

        for num_particles in particle_counts:
            parameters = GSOParameters(
                num_particles=num_particles,
                num_iterations=scale.num_iterations,
                convergence_patience=10**9,  # fixed budget: no early stopping
                random_state=random_state,
            )
            start = time.perf_counter()
            finder.find_regions(query, gso_parameters=parameters)
            rows.append(
                {
                    "sweep": "particles",
                    "dim": dim,
                    "solution_dim": 2 * dim,
                    "num_particles": num_particles,
                    "num_iterations": scale.num_iterations,
                    "seconds": time.perf_counter() - start,
                }
            )
        for num_iterations in iteration_counts:
            parameters = GSOParameters(
                num_particles=scale.num_particles,
                num_iterations=num_iterations,
                convergence_patience=10**9,
                random_state=random_state,
            )
            start = time.perf_counter()
            finder.find_regions(query, gso_parameters=parameters)
            rows.append(
                {
                    "sweep": "iterations",
                    "dim": dim,
                    "solution_dim": 2 * dim,
                    "num_particles": scale.num_particles,
                    "num_iterations": num_iterations,
                    "seconds": time.perf_counter() - start,
                }
            )
    return rows
