"""Figure 12 — surrogate model complexity (tree depth) vs RMSE and IoU.

The paper varies XGBoost's ``max_depth`` and shows training RMSE dropping with
depth, cross-validated RMSE flattening, and IoU mildly improving.  This runner
repeats the study with the from-scratch gradient-boosted surrogate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.evaluation import average_iou
from repro.core.finder import SuRF
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_selection import cross_val_score
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def run(
    scale: ExperimentScale = SMALL,
    max_depths: Sequence[int] = (1, 2, 4, 6, 8),
    random_state: int = 31,
) -> List[Dict]:
    """One row per tree depth with train RMSE, cross-validated RMSE and IoU."""
    scale = get_scale(scale)
    synthetic = common.make_dataset("density", dim=3, num_regions=1, scale=scale, random_state=random_state)
    engine = common.build_engine(synthetic)
    query = common.default_query(synthetic)
    workload = generate_workload(
        engine, common.workload_size_for_dim(scale, 3), random_state=random_state
    )
    features, targets = workload.features, workload.targets

    rows: List[Dict] = []
    for depth in max_depths:
        estimator = GradientBoostingRegressor(n_estimators=80, max_depth=depth, random_state=random_state)
        cv_scores = cross_val_score(
            estimator, features, targets, cv=3, scoring=root_mean_squared_error, random_state=random_state
        )
        trainer = SurrogateTrainer(estimator=estimator, holdout_fraction=0.0, random_state=random_state)
        finder = SuRF(
            trainer=trainer,
            gso_parameters=common.gso_parameters(scale, random_state=random_state),
            use_density_guidance=False,
            random_state=random_state,
        )
        finder.fit(workload)
        result = finder.find_regions(query)
        regions = result.all_feasible_regions() or result.regions
        rows.append(
            {
                "max_depth": depth,
                "train_rmse": trainer.last_report_.train_rmse,
                "cv_rmse": float(np.mean(cv_scores)),
                "iou": average_iou(regions, synthetic.ground_truth_regions),
            }
        )
    return rows
