"""Figure 9 — GSO convergence rate across solution-space dimensionality and k.

The paper tracks the expected objective value ``E[J]`` of the swarm per
iteration for region solution spaces of 2–10 dimensions (data dimensionality
1–5) and k ∈ {1, 3} ground-truth regions, scaling the swarm as ``L = 50 d``
with the adaptive-radius heuristic; the average number of iterations to
convergence across settings is ≈ 63.  This runner reproduces those
convergence curves using SuRF's surrogate-driven swarm.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.optim.gso import GSOParameters


def run(
    scale: ExperimentScale = SMALL,
    dims: Sequence[int] = (1, 2, 3),
    region_counts: Sequence[int] = (1, 3),
    use_paper_swarm_rule: bool = False,
    random_state: int = 17,
) -> List[Dict]:
    """Run the convergence study; one row per (data dim, k).

    Each row carries the solution-space dimensionality (2 d), the iterations
    executed before the convergence criterion fired and the mean-fitness
    history (the E[J] curve of the figure).
    """
    scale = get_scale(scale)
    rows: List[Dict] = []
    for dim in dims:
        for k in region_counts:
            synthetic = common.make_dataset("density", dim, k, scale, random_state + 7 * dim + k)
            engine = common.build_engine(synthetic)
            finder, _ = common.fit_surf(engine, scale, random_state)
            query = common.default_query(synthetic)

            solution_dim = 2 * dim
            if use_paper_swarm_rule:
                parameters = GSOParameters.for_dimension(
                    solution_dim,
                    num_iterations=scale.num_iterations,
                    random_state=random_state,
                )
            else:
                parameters = common.gso_parameters(scale, random_state=random_state)
            result = finder.find_regions(query, gso_parameters=parameters)
            optimization = result.optimization
            history = [value for value in optimization.mean_fitness_history if np.isfinite(value)]
            rows.append(
                {
                    "dim": dim,
                    "solution_dim": solution_dim,
                    "k": k,
                    "num_particles": parameters.num_particles,
                    "iterations": optimization.num_iterations,
                    "converged": optimization.converged,
                    "final_mean_objective": history[-1] if history else float("nan"),
                    "mean_objective_history": optimization.mean_fitness_history,
                }
            )
    return rows


def average_iterations(rows: List[Dict]) -> float:
    """Average iterations-to-convergence across settings (the paper reports ≈ 63)."""
    return float(np.mean([row["iterations"] for row in rows])) if rows else float("nan")
