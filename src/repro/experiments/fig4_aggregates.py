"""Figure 4 — IoU aggregated by number of regions (k) and by statistic type.

The figure is a re-aggregation of the Figure 3 results: average IoU (and its
standard deviation) per method grouped once by ``k`` and once by the statistic
type.  This runner either consumes rows produced by
:mod:`repro.experiments.fig3_accuracy` or generates them itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import fig3_accuracy
from repro.experiments.config import ExperimentScale, SMALL
from repro.experiments.reporting import summarize_rows


def run(
    scale: ExperimentScale = SMALL,
    rows: Optional[List[Dict]] = None,
    **fig3_kwargs,
) -> Dict[str, List[Dict]]:
    """Return the two aggregations of Figure 4.

    Returns a dict with keys ``by_regions`` (method × k) and ``by_statistic``
    (method × statistic type), each a list of rows with mean/std IoU.
    """
    if rows is None:
        rows = fig3_accuracy.run(scale=scale, **fig3_kwargs)
    return {
        "by_regions": summarize_rows(rows, group_by=("method", "k"), value="iou"),
        "by_statistic": summarize_rows(rows, group_by=("method", "statistic"), value="iou"),
        "rows": rows,
    }
