"""Plain-text rendering of experiment results (rows of dicts)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def summarize_rows(rows: Sequence[Dict], group_by: Sequence[str], value: str) -> List[Dict]:
    """Group rows and report mean/std of ``value`` per group (used for Fig. 4-style views)."""
    rows = list(rows)
    if not rows:
        return []
    group_by = list(group_by)
    groups: Dict[tuple, list] = {}
    for row in rows:
        if value not in row:
            raise ValidationError(f"row is missing value column {value!r}")
        key = tuple(row.get(column) for column in group_by)
        groups.setdefault(key, []).append(float(row[value]))
    summary = []
    for key, values in sorted(groups.items(), key=lambda item: tuple(str(part) for part in item[0])):
        entry = dict(zip(group_by, key))
        entry[f"mean_{value}"] = float(np.mean(values))
        entry[f"std_{value}"] = float(np.std(values))
        entry["count"] = len(values)
        summary.append(entry)
    return summary
