"""Shared helpers for the experiment runners."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import SyntheticConfig, SyntheticDataset, make_synthetic_dataset
from repro.experiments.config import ExperimentScale
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def make_dataset(
    statistic: str,
    dim: int,
    num_regions: int,
    scale: ExperimentScale,
    random_state: int,
) -> SyntheticDataset:
    """Synthetic ground-truth dataset sized according to the experiment scale."""
    config = SyntheticConfig(
        statistic=statistic,
        dim=dim,
        num_regions=num_regions,
        num_points=scale.num_points,
        random_state=random_state,
    )
    return make_synthetic_dataset(config)


def build_engine(
    synthetic: SyntheticDataset,
    use_index: bool = False,
    backend: Optional[str] = None,
    backend_options: Optional[dict] = None,
) -> DataEngine:
    """Back-end engine evaluating the dataset's statistic exactly.

    ``backend``/``backend_options`` select the :mod:`repro.backends` engine the
    scans run on (``None`` keeps the in-memory default); names are resolved
    through the :data:`repro.api.registries.BACKENDS` plugin registry, so
    registered third-party backends work here and in every experiment runner
    exactly like the built-ins.  Every backend returns bit-identical
    statistics, so experiment series do not depend on the choice.
    """
    from repro.api.registries import engine_from_config

    return engine_from_config(
        synthetic.dataset,
        {
            "statistic": synthetic.statistic,
            "use_index": use_index,
            "backend": backend,
            "backend_options": backend_options,
        },
    )


def workload_size_for_dim(scale: ExperimentScale, dim: int) -> int:
    """Grow the workload with dimensionality, as the paper does (300–300 k)."""
    return int(min(scale.workload_size * max(1, 2 ** (dim - 1)), 300_000))


def gso_parameters(scale: ExperimentScale, random_state: Optional[int] = None, **overrides) -> GSOParameters:
    """Swarm parameters derived from the experiment scale."""
    defaults = dict(
        num_particles=scale.num_particles,
        num_iterations=scale.num_iterations,
        random_state=random_state,
    )
    defaults.update(overrides)
    return GSOParameters(**defaults)


def fit_surf(
    engine: DataEngine,
    scale: ExperimentScale,
    random_state: int,
    trainer: Optional[SurrogateTrainer] = None,
    surrogate: Optional[str] = None,
    surrogate_options: Optional[dict] = None,
    **surf_kwargs,
) -> Tuple[SuRF, int]:
    """Train a SuRF finder on a freshly generated workload.

    ``surrogate``/``surrogate_options`` pick an estimator family by name from
    the :data:`repro.ml.SURROGATES` registry (``"boosting"``, ``"forest"``,
    ...) when no explicit ``trainer`` is given — the config-dict path the
    :mod:`repro.api` registries open up.  Returns the fitted finder and the
    workload size used.
    """
    if trainer is None and surrogate is not None:
        trainer = SurrogateTrainer(
            estimator=surrogate,
            estimator_options=surrogate_options,
            random_state=random_state,
        )
    elif trainer is not None and surrogate is not None:
        raise ValueError("pass either trainer or surrogate, not both")
    elif surrogate_options:
        raise ValueError("surrogate_options require a surrogate family name")
    num_evaluations = workload_size_for_dim(scale, engine.region_dim)
    finder = SuRF(
        trainer=trainer,
        gso_parameters=gso_parameters(scale, random_state=random_state),
        random_state=random_state,
        **surf_kwargs,
    )
    workload = generate_workload(engine, num_evaluations, random_state=random_state)
    sample_size = min(1_000, engine.dataset.num_rows)
    # Routed through the engine's backend (bit-identical to sampling the
    # dataset directly), so out-of-core backends never load the full table.
    data_sample = engine.sample_region_points(sample_size, random_state=random_state)
    finder.fit(workload, data_sample=data_sample)
    return finder, num_evaluations


def default_query(synthetic: SyntheticDataset, size_penalty: float = 4.0) -> RegionQuery:
    """The threshold query used by the accuracy experiments (Section V-B)."""
    return RegionQuery(
        threshold=synthetic.suggested_threshold(),
        direction="above",
        size_penalty=size_penalty,
    )
