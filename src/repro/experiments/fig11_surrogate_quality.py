"""Figure 11 — surrogate quality: IoU vs RMSE correlation and RMSE vs training size.

Left panel: over a d = 3, k = 1 density dataset, surrogates of varying quality
(different workload sizes and tree depths) are trained; each one's hold-out
RMSE and the IoU SuRF achieves with it are recorded, and their Pearson
correlation is reported (the paper estimates ≈ −0.57).

Right panel: for each data dimensionality, the hold-out RMSE as a function of
the number of training examples (the paper observes ≈ 1 000 examples suffice
at low dimensionality).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.evaluation import average_iou
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import pearson_correlation
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def run_correlation(
    scale: ExperimentScale = SMALL,
    workload_sizes: Sequence[int] = (150, 300, 600, 1_200),
    max_depths: Sequence[int] = (2, 4, 6),
    random_state: int = 23,
) -> Dict:
    """Left panel: IoU vs hold-out RMSE across surrogates of varying quality."""
    scale = get_scale(scale)
    synthetic = common.make_dataset("density", dim=3, num_regions=1, scale=scale, random_state=random_state)
    engine = common.build_engine(synthetic)
    query = common.default_query(synthetic)
    workload = generate_workload(engine, max(workload_sizes), random_state=random_state)

    rows: List[Dict] = []
    for size in workload_sizes:
        subset = workload.subset(size, random_state=random_state) if size < len(workload) else workload
        for depth in max_depths:
            trainer = SurrogateTrainer(
                estimator=GradientBoostingRegressor(
                    n_estimators=80, max_depth=depth, random_state=random_state
                ),
                random_state=random_state,
            )
            from repro.core.finder import SuRF

            finder = SuRF(
                trainer=trainer,
                gso_parameters=common.gso_parameters(scale, random_state=random_state),
                use_density_guidance=False,
                random_state=random_state,
            )
            finder.fit(subset)
            rmse = trainer.last_report_.test_rmse or trainer.last_report_.train_rmse
            result = finder.find_regions(query)
            regions = result.all_feasible_regions() or result.regions
            iou = average_iou(regions, synthetic.ground_truth_regions)
            rows.append(
                {
                    "workload_size": size,
                    "max_depth": depth,
                    "rmse": float(rmse),
                    "iou": float(iou),
                }
            )
    correlation = pearson_correlation(
        np.asarray([row["rmse"] for row in rows]), np.asarray([row["iou"] for row in rows])
    )
    return {"rows": rows, "pearson_correlation": correlation}


def run_learning_curves(
    scale: ExperimentScale = SMALL,
    dims: Sequence[int] = (1, 2, 3),
    workload_sizes: Sequence[int] = (100, 300, 1_000),
    random_state: int = 29,
) -> List[Dict]:
    """Right panel: hold-out RMSE vs number of training examples per dimensionality."""
    scale = get_scale(scale)
    rows: List[Dict] = []
    for dim in dims:
        synthetic = common.make_dataset("density", dim, 1, scale, random_state + dim)
        engine = common.build_engine(synthetic)
        workload = generate_workload(engine, max(workload_sizes), random_state=random_state)
        for size in workload_sizes:
            subset = workload.subset(size, random_state=random_state) if size < len(workload) else workload
            trainer = SurrogateTrainer(random_state=random_state)
            trainer.train(subset)
            report = trainer.last_report_
            rows.append(
                {
                    "dim": dim,
                    "solution_dim": 2 * dim,
                    "workload_size": size,
                    "rmse": float(report.test_rmse or report.train_rmse),
                }
            )
    return rows


def run(scale: ExperimentScale = SMALL, random_state: int = 23) -> Dict:
    """Run both panels of Figure 11."""
    return {
        "correlation": run_correlation(scale=scale, random_state=random_state),
        "learning_curves": run_learning_curves(scale=scale, random_state=random_state + 6),
    }
