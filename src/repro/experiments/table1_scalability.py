"""Table I — wall-clock comparison of the methods across data size and dimensionality.

The paper times SuRF, Naive, f+GlowWorm and PRIM on datasets of 10⁵–10⁷ rows
and 1–5 dimensions (3 000 s timeout) and observes:

* SuRF's time is flat in both N and d (it never touches the data at query time),
* Naive blows up exponentially in d and linearly in N (timing out),
* f+GlowWorm grows linearly in N,
* PRIM grows with N·d but stays tractable longest among the data-driven methods.

This runner reproduces the protocol at configurable (smaller) scales; the
``fraction_done`` column mirrors the paper's "ratio of regions examined before
the timeout".
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.naive import NaiveGridSearch
from repro.baselines.prim import PRIM
from repro.baselines.true_gso import TrueFunctionGSO
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale
from repro.optim.gso import GSOParameters

DEFAULT_METHODS = ("SuRF", "Naive", "f+GlowWorm", "PRIM")


def _timed(function) -> tuple:
    start = time.perf_counter()
    output = function()
    return time.perf_counter() - start, output


def run(
    scale: ExperimentScale = SMALL,
    data_sizes: Sequence[int] = (5_000, 20_000),
    dims: Sequence[int] = (1, 2, 3),
    methods: Sequence[str] = DEFAULT_METHODS,
    random_state: int = 37,
    backend: Optional[str] = None,
    backend_options: Optional[Dict] = None,
) -> List[Dict]:
    """Time each method for every (N, d) combination; one row per measurement.

    SuRF's surrogate is trained once per dimensionality (the paper's point that
    training is a one-off cost shared across requests); the reported time is
    the query-time cost of mining regions.

    ``backend``/``backend_options`` pick the :mod:`repro.backends` engine the
    data-driven methods scan (``None`` keeps the in-memory default).  Every
    backend returns bit-identical statistics, so the measured *times* change
    with the backend while the mined regions do not — which is exactly the
    contrast Table I draws between SuRF and the engine-bound methods.
    """
    scale = get_scale(scale)
    rows: List[Dict] = []
    for dim in dims:
        # SuRF surrogates depend only on the region space, not on N, so train once
        # per dimensionality on the smallest dataset.
        for num_points in data_sizes:
            config = SyntheticConfig(
                statistic="density",
                dim=dim,
                num_regions=1,
                num_points=int(num_points),
                random_state=random_state + dim,
            )
            synthetic = make_synthetic_dataset(config)
            engine = DataEngine(
                synthetic.dataset,
                synthetic.statistic,
                backend=backend,
                backend_options=backend_options,
            )
            query = common.default_query(synthetic)
            gso_params = GSOParameters(
                num_particles=scale.num_particles,
                num_iterations=scale.num_iterations,
                random_state=random_state,
            )

            for method in methods:
                if method == "SuRF":
                    finder, _ = common.fit_surf(engine, scale, random_state)
                    seconds, _ = _timed(lambda: finder.find_regions(query, gso_parameters=gso_params))
                    fraction_done = 1.0
                elif method == "Naive":
                    naive = NaiveGridSearch(
                        num_centers=6,
                        num_lengths=6,
                        max_half_fraction=0.3,
                        time_budget_seconds=scale.time_budget_seconds,
                        max_candidates=scale.naive_max_candidates,
                    )
                    seconds, _ = _timed(lambda: naive.find_regions(engine, query))
                    fraction_done = naive.last_report_.fraction_evaluated
                elif method == "f+GlowWorm":
                    baseline = TrueFunctionGSO(gso_parameters=gso_params, random_state=random_state)
                    seconds, _ = _timed(lambda: baseline.find_regions(engine, query))
                    fraction_done = 1.0
                elif method == "PRIM":
                    points = synthetic.dataset.select_columns(synthetic.region_columns).values
                    response = np.ones(points.shape[0])
                    prim = PRIM(mass_min=0.01, max_boxes=3)
                    seconds, _ = _timed(lambda: prim.find_regions(points, response))
                    fraction_done = 1.0
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown method {method!r}")
                rows.append(
                    {
                        "method": method,
                        "dim": dim,
                        "num_points": int(num_points),
                        "seconds": seconds,
                        "fraction_done": float(fraction_done),
                        "backend": engine.backend.name,
                    }
                )
            engine.close()
    return rows


def speedup_summary(rows: List[Dict]) -> List[Dict]:
    """SuRF's speed-up over each competitor at the largest (N, d) setting measured."""
    if not rows:
        return []
    largest_n = max(row["num_points"] for row in rows)
    largest_d = max(row["dim"] for row in rows)
    at_largest = [row for row in rows if row["num_points"] == largest_n and row["dim"] == largest_d]
    surf_rows = [row for row in at_largest if row["method"] == "SuRF"]
    if not surf_rows:
        return []
    surf_seconds = surf_rows[0]["seconds"]
    summary = []
    for row in at_largest:
        if row["method"] == "SuRF":
            continue
        summary.append(
            {
                "method": row["method"],
                "dim": largest_d,
                "num_points": largest_n,
                "speedup_of_surf": row["seconds"] / max(surf_seconds, 1e-9),
            }
        )
    return summary
