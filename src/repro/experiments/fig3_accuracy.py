"""Figure 3 — average IoU of each method across dimensionality, statistic and k.

For every synthetic dataset (statistic ∈ {aggregate, density}, d ∈ 1..5,
k ∈ {1, 3}) the four methods of the paper are run and the average IoU of their
proposed regions against the planted ground truth is recorded:

* SuRF (surrogate + GSO),
* Naive (discretised exhaustive search),
* PRIM (peel/paste bump hunting; response = target attribute for the
  aggregate statistic and a constant for the density statistic, which is the
  paper's point about PRIM not being applicable there),
* f+GlowWorm (GSO on the true statistic).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.naive import NaiveGridSearch
from repro.baselines.prim import PRIM
from repro.baselines.true_gso import TrueFunctionGSO
from repro.core.evaluation import average_iou
from repro.data.regions import Region
from repro.experiments import common
from repro.experiments.config import ExperimentScale, SMALL, get_scale

DEFAULT_METHODS = ("SuRF", "Naive", "PRIM", "f+GlowWorm")


def _surf_iou(synthetic, engine, scale, random_state):
    finder, _ = common.fit_surf(engine, scale, random_state)
    query = common.default_query(synthetic)
    result = finder.find_regions(query)
    regions = result.all_feasible_regions() or result.regions
    return average_iou(regions, synthetic.ground_truth_regions)


def _true_gso_iou(synthetic, engine, scale, random_state):
    query = common.default_query(synthetic)
    baseline = TrueFunctionGSO(
        gso_parameters=common.gso_parameters(scale, random_state=random_state),
        random_state=random_state,
    )
    baseline.find_regions(engine, query)
    optimization = baseline.last_result_.optimization
    regions = [Region.from_vector(vector) for vector in optimization.feasible_positions]
    if not regions:
        regions = [proposal.region for proposal in baseline.last_result_.proposals]
    return average_iou(regions, synthetic.ground_truth_regions)


def _naive_iou(synthetic, engine, scale, random_state):
    query = common.default_query(synthetic)
    baseline = NaiveGridSearch(
        num_centers=6,
        num_lengths=6,
        max_half_fraction=0.3,
        max_candidates=scale.naive_max_candidates,
        time_budget_seconds=scale.time_budget_seconds,
    )
    proposals = baseline.find_regions(engine, query)
    return average_iou(proposals, synthetic.ground_truth_regions)


def _prim_iou(synthetic, engine, scale, random_state):
    dataset = synthetic.dataset
    region_columns = synthetic.region_columns
    points = dataset.select_columns(region_columns).values
    if synthetic.config.statistic == "aggregate":
        response = dataset.column("target")
        prim = PRIM(mass_min=0.01, threshold=2.0, max_boxes=max(3, synthetic.config.num_regions))
    else:
        # The density statistic has no response attribute; PRIM is run on a constant
        # response, which is exactly the mismatch the paper describes.
        response = np.ones(dataset.num_rows)
        prim = PRIM(mass_min=0.01, threshold=None, max_boxes=max(3, synthetic.config.num_regions))
    proposals = prim.find_regions(points, response)
    return average_iou(proposals, synthetic.ground_truth_regions)


_METHOD_RUNNERS = {
    "SuRF": _surf_iou,
    "Naive": _naive_iou,
    "PRIM": _prim_iou,
    "f+GlowWorm": _true_gso_iou,
}


def run(
    scale: ExperimentScale = SMALL,
    dims: Sequence[int] = (1, 2, 3),
    region_counts: Sequence[int] = (1, 3),
    statistics: Sequence[str] = ("aggregate", "density"),
    methods: Sequence[str] = DEFAULT_METHODS,
    random_state: int = 11,
) -> List[Dict]:
    """Run the accuracy comparison and return one row per (statistic, d, k, method).

    The defaults cover d ∈ 1..3 to keep the run short; pass ``dims=(1, 2, 3, 4, 5)``
    for the paper's full sweep.
    """
    scale = get_scale(scale)
    rows: List[Dict] = []
    for statistic in statistics:
        for dim in dims:
            for k in region_counts:
                synthetic = common.make_dataset(statistic, dim, k, scale, random_state + dim * 13 + k)
                engine = common.build_engine(synthetic)
                for method in methods:
                    runner = _METHOD_RUNNERS[method]
                    engine.reset_evaluation_counter()
                    start = time.perf_counter()
                    iou = runner(synthetic, engine, scale, random_state)
                    elapsed = time.perf_counter() - start
                    rows.append(
                        {
                            "statistic": statistic,
                            "dim": dim,
                            "k": k,
                            "method": method,
                            "iou": float(iou),
                            "seconds": elapsed,
                            "engine_evaluations": engine.num_evaluations,
                        }
                    )
    return rows
