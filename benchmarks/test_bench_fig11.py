"""Benchmark regenerating Figure 11: surrogate quality (IoU↔RMSE, learning curves)."""

from conftest import attach_rows

from repro.experiments import fig11_surrogate_quality


def test_bench_fig11_surrogate_quality(benchmark, bench_scale):
    outcome = benchmark.pedantic(
        fig11_surrogate_quality.run, kwargs={"scale": bench_scale, "random_state": 23}, rounds=1, iterations=1
    )
    correlation = outcome["correlation"]
    attach_rows(benchmark, correlation["rows"], "Figure 11 (left) — IoU vs surrogate RMSE")
    print(f"\nPearson correlation (paper: ≈ -0.57): {correlation['pearson_correlation']:.2f}")
    print()
    attach_rows(benchmark, outcome["learning_curves"], "Figure 11 (right) — RMSE vs number of training examples")
    assert -1.0 <= correlation["pearson_correlation"] <= 1.0
