"""Benchmark regenerating Figure 6: surrogate training overhead vs workload size."""

from conftest import attach_rows

from repro.experiments import fig6_training


def test_bench_fig6_training_overhead(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig6_training.run,
        kwargs={"scale": bench_scale, "workload_sizes": (200, 500, 1_000), "random_state": 3},
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 6 — training time with and without grid-search hyper-tuning")
    tuned = [row for row in rows if row["hypertuned"]]
    plain = [row for row in rows if not row["hypertuned"]]
    assert max(row["training_seconds"] for row in tuned) > max(row["training_seconds"] for row in plain)
