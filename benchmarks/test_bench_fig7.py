"""Benchmark regenerating Figure 7: log objective (Eq. 4) vs ratio objective (Eq. 2)."""

from conftest import attach_rows

from repro.experiments import fig7_objectives


def test_bench_fig7_objective_landscapes(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig7_objectives.run,
        kwargs={"scale": bench_scale, "c_values": (1.0, 2.0, 3.0, 4.0), "random_state": 9},
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 7 — objective landscapes across c (defined fraction of the grid)")
    log_rows = [row for row in rows if row["objective"] == "log"]
    assert all(row["defined_fraction"] < 1.0 for row in log_rows)
