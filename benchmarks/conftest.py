"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see ``repro.experiments.config``), attaches the resulting rows to
``benchmark.extra_info`` and prints them, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the series the paper reports alongside the timing data.
Set ``REPRO_BENCH_SCALE=medium`` (or ``paper``) for larger runs.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments.config import get_scale

# The API benchmark compares the middleware kernel against the frozen PR 4
# monolith kept in tests/helpers/legacy_service.py.
HELPERS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "tests", "helpers")
if HELPERS_DIR not in sys.path:
    sys.path.insert(0, HELPERS_DIR)


@pytest.fixture(scope="session")
def bench_scale():
    """Experiment scale used by all benchmarks (``REPRO_BENCH_SCALE`` env var)."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def attach_rows(benchmark, rows, title):
    """Store experiment rows on the benchmark record, print them and save them to disk.

    The rendered tables are appended to ``benchmarks/results/<benchmark>.txt`` so the
    regenerated series survive pytest's output capture.
    """
    from repro.experiments.reporting import format_table

    if isinstance(rows, dict):
        benchmark.extra_info.update(
            {str(key): str(value) for key, value in rows.items() if not hasattr(value, "shape")}
        )
        printable = [{"metric": key, "value": value} for key, value in rows.items() if not hasattr(value, "shape")]
        text = format_table(printable, title=title)
    else:
        benchmark.extra_info["rows"] = len(rows)
        text = format_table(rows, title=title)
    print("\n" + text)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    name = getattr(benchmark, "name", None) or "benchmark"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
