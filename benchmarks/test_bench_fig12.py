"""Benchmark regenerating Figure 12: RMSE and IoU vs surrogate model complexity."""

from conftest import attach_rows

from repro.experiments import fig12_model_complexity


def test_bench_fig12_model_complexity(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig12_model_complexity.run,
        kwargs={"scale": bench_scale, "max_depths": (1, 2, 4, 6, 8), "random_state": 31},
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 12 — RMSE and IoU vs tree depth")
    shallow = next(row for row in rows if row["max_depth"] == 1)
    deep = next(row for row in rows if row["max_depth"] == 8)
    assert deep["train_rmse"] <= shallow["train_rmse"]
