"""Online-refresh benchmarks: incremental warm-start refresh vs full retrain.

The online learning loop's acceptance bar (ISSUE 3): at ``W = 5,000`` past
evaluations with a drifting workload, folding freshly harvested pairs in via
warm-start boosting must be **≥ 5x cheaper** than retraining the surrogate
from scratch, while matching the full retrain's RMSE on held-out drifted
evaluations **within 10 %**.

The wall-clock floor can be relaxed on noisy shared CI runners with
``REPRO_ONLINE_SPEEDUP_FLOOR`` (the RMSE tolerance stays fixed — accuracy does
not depend on the runner).
"""

import os
import timeit

import pytest

from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.online import IncrementalTrainer, QueryLog
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload

#: The acceptance scale: base workload size and the drifted batch folded in.
BASE_WORKLOAD = 5_000
FRESH_PAIRS = 500
HOLDOUT_PAIRS = 400
#: Warm-start rounds per refresh — 10 % of the full ensemble, which is what
#: makes the incremental path ~6x cheaper while staying within the RMSE bar.
WARM_ROUNDS = 15


def _online_speedup_floor() -> float:
    """Required incremental-over-full speedup (default 5x, the acceptance floor)."""
    return float(os.environ.get("REPRO_ONLINE_SPEEDUP_FLOOR", "5.0"))


@pytest.fixture(scope="module")
def drifting_workload():
    """Base-world training data plus drifted-world fresh and holdout batches."""
    base = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=1, num_points=6_000, random_state=5
    )
    base_engine = DataEngine(base.dataset, base.statistic)
    workload = generate_workload(base_engine, BASE_WORKLOAD, random_state=0)

    drifted = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=6_000, random_state=23
    )
    drifted_engine = DataEngine(drifted.dataset, drifted.statistic)
    fresh = generate_workload(drifted_engine, FRESH_PAIRS, random_state=1)
    holdout = generate_workload(drifted_engine, HOLDOUT_PAIRS, random_state=2)

    trainer = SurrogateTrainer(
        estimator=GradientBoostingRegressor(n_estimators=150, max_depth=5, random_state=0),
        holdout_fraction=0.0,
        random_state=0,
    )
    surrogate = trainer.train(workload)
    return trainer, surrogate, workload, fresh, holdout


def test_bench_full_retrain(benchmark, drifting_workload):
    trainer, _, workload, fresh, holdout = drifting_workload
    merged = workload.merged_with(fresh)
    model = benchmark(trainer.train, merged)
    assert model.rmse(holdout.features, holdout.targets) > 0


def test_bench_incremental_refresh(benchmark, drifting_workload):
    trainer, surrogate, workload, fresh, holdout = drifting_workload
    merged = workload.merged_with(fresh)
    model = benchmark(trainer.train_incremental, surrogate, merged, WARM_ROUNDS)
    assert model.rmse(holdout.features, holdout.targets) > 0


def test_incremental_refresh_speedup_and_rmse_tolerance(drifting_workload):
    """The acceptance assertion: ≥ 5x cheaper, drifted-holdout RMSE within 10 %."""
    trainer, surrogate, workload, fresh, holdout = drifting_workload
    merged = workload.merged_with(fresh)

    full_seconds = min(timeit.repeat(lambda: trainer.train(merged), number=1, repeat=3))
    incremental_seconds = min(
        timeit.repeat(
            lambda: trainer.train_incremental(surrogate, merged, extra_rounds=WARM_ROUNDS),
            number=1,
            repeat=3,
        )
    )
    full_model = trainer.train(merged)
    incremental_model = trainer.train_incremental(surrogate, merged, extra_rounds=WARM_ROUNDS)

    speedup = full_seconds / incremental_seconds
    rmse_full = full_model.rmse(holdout.features, holdout.targets)
    rmse_incremental = incremental_model.rmse(holdout.features, holdout.targets)

    print(
        f"\nW={BASE_WORKLOAD}+{FRESH_PAIRS}: full retrain {full_seconds * 1e3:.0f} ms, "
        f"incremental {incremental_seconds * 1e3:.0f} ms ({speedup:.1f}x); "
        f"drifted-holdout RMSE full {rmse_full:.1f} vs incremental {rmse_incremental:.1f} "
        f"({rmse_incremental / rmse_full:.3f}x)"
    )
    assert speedup >= _online_speedup_floor(), (
        f"incremental refresh is only {speedup:.1f}x cheaper than a full retrain"
    )
    assert rmse_incremental <= 1.10 * rmse_full, (
        f"incremental RMSE {rmse_incremental:.2f} misses full-retrain RMSE "
        f"{rmse_full:.2f} by more than 10%"
    )


def test_end_to_end_service_refresh_latency(drifting_workload):
    """The whole service refresh (log drain → train → swap) stays sub-linear in W.

    Not a strict floor — just a guard that the hot-swap machinery (cursoring,
    satisfiability merge, finder rebuild) adds only small overhead on top of
    the incremental training cost measured above.
    """
    from repro.core.finder import SuRF
    from repro.serve.service import SuRFService

    trainer, _, workload, fresh, _ = drifting_workload
    finder = SuRF(trainer=trainer, use_density_guidance=False, random_state=0)
    finder.fit(workload)
    service = SuRFService(
        finder,
        query_log=QueryLog(capacity=100_000),
        incremental_trainer=IncrementalTrainer.from_finder(
            finder, warm_start_rounds=WARM_ROUNDS, full_refit_on_drift=False
        ),
    )
    service.observe_many(list(fresh))

    incremental_seconds = min(
        timeit.repeat(
            lambda: trainer.train_incremental(
                service.finder.surrogate_, workload.merged_with(fresh), extra_rounds=WARM_ROUNDS
            ),
            number=1,
            repeat=3,
        )
    )
    import time

    start = time.perf_counter()
    outcome = service.refresh()
    refresh_seconds = time.perf_counter() - start

    print(
        f"\nservice.refresh(): {refresh_seconds * 1e3:.0f} ms total for "
        f"{outcome.num_new_pairs} pairs (training alone: {incremental_seconds * 1e3:.0f} ms)"
    )
    assert outcome.mode == "incremental"
    assert service.generation == 1
    # Swap overhead (everything that is not training) stays small.
    assert refresh_seconds < 3.0 * incremental_seconds + 0.5
