"""Benchmark regenerating Figure 4: IoU aggregated by number of regions and statistic type."""

from conftest import attach_rows

from repro.experiments import fig4_aggregates


def test_bench_fig4_aggregated_iou(benchmark, bench_scale):
    outcome = benchmark.pedantic(
        fig4_aggregates.run,
        kwargs={
            "scale": bench_scale,
            "dims": (1, 2),
            "region_counts": (1, 3),
            "statistics": ("aggregate", "density"),
            "random_state": 11,
        },
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, outcome["by_regions"], "Figure 4 (left) — mean IoU per method and k")
    print()
    attach_rows(benchmark, outcome["by_statistic"], "Figure 4 (right) — mean IoU per method and statistic")
    assert outcome["by_regions"] and outcome["by_statistic"]
