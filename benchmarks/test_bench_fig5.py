"""Benchmark regenerating Figure 5: the Crimes qualitative analysis."""

from conftest import attach_rows

from repro.experiments import fig5_crimes


def test_bench_fig5_crimes_qualitative(benchmark, bench_scale):
    outcome = benchmark.pedantic(
        fig5_crimes.run, kwargs={"scale": bench_scale, "random_state": 5}, rounds=1, iterations=1
    )
    attach_rows(benchmark, outcome, "Figure 5 — Crimes-like Q3 query (paper: 100% of proposals comply)")
    assert outcome["num_proposals"] >= 1
    assert outcome["compliance"] >= 0.5
