"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the contribution of individual
SuRF components on a fixed multimodal density task:

* KDE-guided neighbour selection (Eq. 8) on/off,
* log objective (Eq. 4) vs ratio objective (Eq. 2),
* surrogate family (gradient boosting vs random forest vs k-NN vs ridge),
* GSO (multimodal) vs PSO (unimodal),
* warm-starting the swarm from past evaluations on/off.
"""

import numpy as np
from conftest import attach_rows

from repro.core.evaluation import average_iou, compliance_rate
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.linear import RidgeRegression
from repro.optim.gso import GSOParameters
from repro.optim.pso import ParticleSwarmOptimizer, PSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def _task(bench_scale, random_state=1):
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=3, num_points=bench_scale.num_points, random_state=random_state
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 4 * bench_scale.workload_size, random_state=random_state)
    query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above", size_penalty=4.0)
    sample = engine.dataset.sample(min(800, engine.dataset.num_rows), random_state=random_state).values
    params = GSOParameters(
        num_particles=bench_scale.num_particles,
        num_iterations=bench_scale.num_iterations,
        random_state=random_state,
    )
    return synthetic, engine, workload, query, sample, params


def _evaluate_variant(synthetic, engine, query, finder, workload, sample):
    finder.fit(workload, data_sample=sample)
    result = finder.find_regions(query)
    regions = result.all_feasible_regions() or result.regions
    return {
        "iou": average_iou(regions, synthetic.ground_truth_regions),
        "compliance": compliance_rate(result.proposals, engine, query),
        "proposals": result.num_regions,
        "seconds": result.elapsed_seconds,
    }


def test_bench_ablation_density_guidance_and_objective(benchmark, bench_scale):
    synthetic, engine, workload, query, sample, params = _task(bench_scale)

    def run_all():
        rows = []
        variants = {
            "full SuRF (log objective, Eq.8 guidance)": dict(objective="log", use_density_guidance=True),
            "no density guidance": dict(objective="log", use_density_guidance=False),
            "ratio objective (Eq. 2)": dict(objective="ratio", use_density_guidance=True),
            "no warm start": dict(objective="log", use_density_guidance=True, warm_start_fraction=0.0),
        }
        for name, kwargs in variants.items():
            finder = SuRF(gso_parameters=params, random_state=1, **kwargs)
            outcome = _evaluate_variant(synthetic, engine, query, finder, workload, sample)
            rows.append({"variant": name, **outcome})
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "Ablation — guidance, objective and warm start")
    assert len(rows) == 4


def test_bench_ablation_surrogate_family(benchmark, bench_scale):
    synthetic, engine, workload, query, sample, params = _task(bench_scale, random_state=2)

    families = {
        "gradient boosting": GradientBoostingRegressor(n_estimators=80, max_depth=5, random_state=2),
        "random forest": RandomForestRegressor(n_estimators=40, max_depth=10, random_state=2),
        "k-nearest neighbours": KNeighborsRegressor(n_neighbors=7, weights="distance"),
        "ridge regression": RidgeRegression(alpha=1.0),
    }

    def run_all():
        rows = []
        for name, estimator in families.items():
            finder = SuRF(
                trainer=SurrogateTrainer(estimator=estimator, random_state=2),
                gso_parameters=params,
                random_state=2,
            )
            outcome = _evaluate_variant(synthetic, engine, query, finder, workload, sample)
            rows.append({"surrogate": name, **outcome})
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "Ablation — surrogate model family")
    assert len(rows) == 4


def test_bench_ablation_gso_vs_pso(benchmark, bench_scale):
    """GSO keeps multiple modes alive; PSO collapses to a single optimum."""
    synthetic, engine, workload, query, sample, params = _task(bench_scale, random_state=3)
    finder = SuRF(gso_parameters=params, random_state=3)
    finder.fit(workload, data_sample=sample)
    objective = finder.build_objective(query)
    lower, upper = finder.solution_space_.bounds_vectors()

    def run_both():
        gso_result = finder.find_regions(query)
        gso_iou = average_iou(gso_result.all_feasible_regions(), synthetic.ground_truth_regions)

        pso = ParticleSwarmOptimizer(
            objective,
            lower,
            upper,
            PSOParameters(
                num_particles=params.num_particles,
                num_iterations=params.num_iterations,
                random_state=3,
            ),
        )
        pso_result = pso.run()
        from repro.data.regions import Region

        pso_regions = [Region.from_vector(v) for v in pso_result.feasible_positions]
        pso_iou = average_iou(pso_regions, synthetic.ground_truth_regions)
        return [
            {"optimizer": "GSO (multimodal)", "iou": gso_iou, "distinct_proposals": gso_result.num_regions},
            {"optimizer": "PSO (unimodal)", "iou": pso_iou, "distinct_proposals": 1 if pso_regions else 0},
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "Ablation — GSO vs PSO on a k=3 multimodal query")
    assert len(rows) == 2
