"""Front-door benchmarks: middleware-chain overhead and batch throughput.

Two acceptance bounds guard the PR 5 API redesign:

* **Cached-hit overhead <= 10%** — decomposing the serving monolith into the
  ``Normalize → SatisfiabilityGate → Cache → Coalesce → Execute → Harvest``
  chain must not tax the paper's headline property (query latency independent
  of ``N``, Table I).  Measured on an all-cached 16-query burst against the
  frozen PR 4 monolith (``tests/helpers/legacy_service.py``).  In practice the
  chain is *faster* than the monolith: frozen envelopes let the kernel intern
  each request's canonical query, so repeated thresholds skip re-normalisation
  entirely (measured ~0.5x, i.e. a ~2x speedup; the ceiling still asserts the
  1.10x bound).
* **Batch throughput >= 2x sequential** — the PR 2 floor, retained through the
  new kernel: a 16-query burst with 4 distinct thresholds must beat 16
  sequential ``handle`` calls by >= 2x (coalescing runs each distinct query
  once; ``REPRO_API_SPEEDUP_FLOOR`` relaxes the floor on noisy shared
  runners).
"""

import os
import time

import numpy as np
import pytest

from legacy_service import LegacySuRFService
from repro.api import FindRequest, ModelRegistry, ServiceKernel
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.optim.gso import GSOParameters
from repro.serve.service import SuRFService
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload

#: Queries per burst / distinct thresholds inside it (the PR 2 shape).
BATCH_QUERIES = 16
DISTINCT_QUERIES = 4
#: Rounds of the cached-burst timing loop (median-of-rounds is reported).
CACHED_ROUNDS = 400


def _overhead_ceiling() -> float:
    """Allowed cached-hit latency ratio vs the PR 4 monolith (acceptance: 1.10)."""
    return float(os.environ.get("REPRO_API_OVERHEAD_CEILING", "1.10"))


def _compiled_speedup_floor() -> float:
    """Required end-to-end find speedup of the compiled surrogate (acceptance: 5x)."""
    return float(os.environ.get("REPRO_COMPILED_SPEEDUP_FLOOR", "5.0"))


def _speedup_floor() -> float:
    """Required batch-over-sequential speedup (acceptance: 2x, as in PR 2)."""
    return float(os.environ.get("REPRO_API_SPEEDUP_FLOOR", "2.0"))


@pytest.fixture(scope="module")
def api_finder():
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=5_000, random_state=9
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 1_000, random_state=0)
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=60, max_depth=4, random_state=0),
            random_state=0,
        ),
        gso_parameters=GSOParameters(num_particles=40, num_iterations=25, random_state=0),
        random_state=0,
    )
    sample = engine.dataset.sample(600, random_state=0).select_columns(engine.region_columns).values
    finder.fit(workload, data_sample=sample)
    return finder


@pytest.fixture(scope="module")
def api_burst(api_finder):
    """16 queries over 4 distinct thresholds — heavy repeated analyst traffic."""
    model = api_finder.satisfiability_
    templates = [
        RegionQuery(threshold=float(model.quantile(q)), direction="above")
        for q in np.linspace(0.70, 0.85, DISTINCT_QUERIES)
    ]
    return [templates[i % DISTINCT_QUERIES] for i in range(BATCH_QUERIES)]


def _time_cached_bursts(serve_batch, burst) -> float:
    """Median wall-clock of an all-cached burst (cache warmed first)."""
    serve_batch(burst)  # one cold pass fills the cache
    samples = []
    for _ in range(CACHED_ROUNDS):
        start = time.perf_counter()
        serve_batch(burst)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_bench_cached_hit_overhead_vs_pr4_monolith(api_finder, api_burst):
    """Middleware kernel cached-hit latency <= 1.10x the PR 4 monolith."""
    legacy_service = LegacySuRFService(api_finder)
    modern_service = SuRFService(api_finder)

    # Bit-identical answers before any latency claim.
    legacy_responses = legacy_service.find_regions_batch(api_burst)
    modern_responses = modern_service.find_regions_batch(api_burst)
    for before, after in zip(legacy_responses, modern_responses):
        assert after.status == before.status
        for lhs, rhs in zip(before.proposals, after.proposals):
            assert np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
            assert lhs.objective_value == rhs.objective_value

    legacy_seconds = _time_cached_bursts(legacy_service.find_regions_batch, api_burst)
    modern_seconds = _time_cached_bursts(modern_service.find_regions_batch, api_burst)
    assert modern_service.stats.cache_hits >= CACHED_ROUNDS * BATCH_QUERIES

    ratio = modern_seconds / legacy_seconds
    print(
        f"\ncached 16-query burst: PR 4 monolith {legacy_seconds * 1e6:.1f}us, "
        f"middleware kernel {modern_seconds * 1e6:.1f}us, ratio {ratio:.2f}x "
        f"(ceiling {_overhead_ceiling():.2f}x)"
    )
    assert ratio <= _overhead_ceiling()


def test_bench_batch_throughput_floor_is_retained(api_finder, api_burst):
    """Kernel batch serving >= 2x sequential on the 16-query burst (PR 2 floor)."""
    kernel = ServiceKernel(api_finder)
    requests = [FindRequest.from_query(query) for query in api_burst]

    start = time.perf_counter()
    sequential = [ServiceKernel(api_finder).handle(request) for request in requests]
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = kernel.handle_batch(requests)
    batch_seconds = time.perf_counter() - start

    # Same answers, request for request, before the throughput claim.
    for before, after in zip(sequential, batched):
        assert after.status == "served"
        assert after.proposals == before.proposals

    stats = kernel.stats
    assert stats.gso_runs == DISTINCT_QUERIES
    assert stats.coalesced == BATCH_QUERIES - DISTINCT_QUERIES

    speedup = sequential_seconds / batch_seconds
    print(
        f"\nfront-door burst of {BATCH_QUERIES} ({DISTINCT_QUERIES} distinct): "
        f"sequential {sequential_seconds:.2f}s, batch {batch_seconds:.2f}s, "
        f"speedup {speedup:.1f}x (floor {_speedup_floor():.1f}x)"
    )
    assert speedup >= _speedup_floor()


def test_bench_compiled_find_speedup(api_finder):
    """End-to-end ``find`` with the compiled surrogate is >= 5x the recursive one.

    Two finders, identical in every setting except the surrogate family
    (``boosting`` vs ``compiled-boosting``), fitted on the same workload with
    the same seed.  Bit-identical proposals are asserted before the latency
    claim — the compiled kernel buys time, never answers.  The surrogate here
    is the paper-sized 150-tree ensemble (the ``api_finder`` fixture's 60-tree
    model is deliberately small for cache benchmarks), and density guidance is
    off so the measured loop is the pure GSO-over-surrogate query path.
    ``REPRO_COMPILED_SPEEDUP_FLOOR`` relaxes the floor on noisy shared runners.
    """
    engine = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=5_000, random_state=9
    )
    engine = DataEngine(engine.dataset, engine.statistic)
    workload = generate_workload(engine, 1_000, random_state=0)

    def build(family):
        finder = SuRF(
            trainer=SurrogateTrainer(
                estimator=family,
                estimator_options={"n_estimators": 150, "max_depth": 5},
                random_state=0,
            ),
            use_density_guidance=False,
            gso_parameters=GSOParameters(num_particles=64, num_iterations=40, random_state=0),
            random_state=0,
        )
        finder.fit(workload)
        return finder

    recursive = build("boosting")
    compiled = build("compiled-boosting")
    query = RegionQuery(
        threshold=float(recursive.satisfiability_.quantile(0.8)), direction="above"
    )

    # Same answer first: positions and proposals must match bit for bit.
    result_recursive = recursive.find_regions(query)
    result_compiled = compiled.find_regions(query)
    assert np.array_equal(
        result_recursive.optimization.positions, result_compiled.optimization.positions
    )
    for lhs, rhs in zip(result_recursive.proposals, result_compiled.proposals):
        assert np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())

    def best_of(find, rounds=3):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            find(query)
            samples.append(time.perf_counter() - start)
        return min(samples)

    recursive_seconds = best_of(recursive.find_regions)
    compiled_seconds = best_of(compiled.find_regions)
    speedup = recursive_seconds / compiled_seconds
    print(
        f"\nend-to-end find (150 trees, 64x40 GSO): recursive {recursive_seconds * 1e3:.0f}ms, "
        f"compiled {compiled_seconds * 1e3:.0f}ms, speedup {speedup:.1f}x "
        f"(floor {_compiled_speedup_floor():.1f}x)"
    )
    assert speedup >= _compiled_speedup_floor()


def test_bench_multi_tenant_routing_overhead(api_finder, api_burst):
    """Routing a mixed-tenant cached burst through ModelRegistry stays cheap.

    The registry adds one group-by pass over the batch; on an all-cached
    burst split across two tenants it must stay within 2x of serving the
    same burst through a single kernel (it performs two kernel batches).
    """
    registry = ModelRegistry()
    registry.register("tenant/a", api_finder)
    registry.register("tenant/b", api_finder)
    requests = [
        FindRequest.from_query(query, model=("tenant/a" if index % 2 else "tenant/b"))
        for index, query in enumerate(api_burst)
    ]
    single = ServiceKernel(api_finder)
    single_requests = [FindRequest.from_query(query) for query in api_burst]

    single_seconds = _time_cached_bursts(single.handle_batch, single_requests)
    routed_seconds = _time_cached_bursts(registry.find_batch, requests)

    ratio = routed_seconds / single_seconds
    print(
        f"\nmixed-tenant cached burst: single kernel {single_seconds * 1e6:.1f}us, "
        f"registry-routed (2 tenants) {routed_seconds * 1e6:.1f}us, ratio {ratio:.2f}x"
    )
    assert ratio <= 2.0
