"""Load benchmark: the async front door under a concurrent mixed-tenant storm.

Drives ``REPRO_LOAD_QUERIES`` (default 1,000) concurrent queries through the
:class:`~repro.api.asgi.AsgiApp` — two tenants, mixed cached / cold /
rejected traffic, all multiplexed on one asyncio event loop — while a
background thread hot-swaps **both** tenants' models mid-storm via
``ModelRegistry.refresh_all``.  Asserted outcomes:

* every response is a valid verdict (``served`` / ``cached`` / ``rejected``)
  — no errors, no dropped requests;
* latency ceilings hold: p50 <= ``REPRO_LOAD_P50_FLOOR`` (default 5.0 s) and
  p99 <= ``REPRO_LOAD_P99_FLOOR`` (default 20.0 s).  Latency is measured from
  task creation under a closed burst, so queueing behind the thread pool's
  GSO runs is included; the loose defaults catch event-loop starvation and
  lock convoys, not absolute speed, and the env overrides relax them further
  on noisy shared CI runners;
* the refresh really raced the storm: both generations bumped, and responses
  from *both* the pre- and post-swap generation were served;
* **zero cross-generation cache pollution**: after the storm, every result
  still in either tenant's cache re-predicts bit-identically under that
  tenant's *current* surrogate — a stale generation's answer surviving the
  swap would mismatch.
"""

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.api import AsgiApp, ModelRegistry, asgi_request
from repro.core.finder import SuRF
from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.online import QueryLog
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def _load_queries() -> int:
    return int(os.environ.get("REPRO_LOAD_QUERIES", "1000"))


def _p50_ceiling() -> float:
    return float(os.environ.get("REPRO_LOAD_P50_FLOOR", "5.0"))


def _p99_ceiling() -> float:
    return float(os.environ.get("REPRO_LOAD_P99_FLOOR", "20.0"))


#: Distinct satisfiable thresholds per tenant (the rest of the traffic repeats
#: them, which is what the cache and coalescing exist for).
DISTINCT_PER_TENANT = 6


@pytest.fixture(scope="module")
def load_world():
    """Two fitted tenants on one dataset, their engine, and a threshold band."""
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=4_000, random_state=17
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 800, random_state=0)

    def fit(random_state: int) -> SuRF:
        finder = SuRF(
            trainer=SurrogateTrainer(
                estimator=GradientBoostingRegressor(
                    n_estimators=40, max_depth=4, random_state=random_state
                ),
                random_state=random_state,
            ),
            gso_parameters=GSOParameters(
                num_particles=30, num_iterations=20, random_state=random_state
            ),
            random_state=random_state,
            use_density_guidance=False,
        )
        return finder.fit(workload)

    return {"engine": engine, "finders": (fit(0), fit(1))}


def percentile(samples, q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def test_bench_load_concurrent_storm_with_hot_swap(benchmark, load_world):
    engine = load_world["engine"]
    finder_a, finder_b = load_world["finders"]

    registry = ModelRegistry()
    registry.register("alpha", finder_a, cache_size=128, query_log=QueryLog(capacity=100_000))
    registry.register("beta", finder_b, cache_size=128, query_log=QueryLog(capacity=100_000))
    app = AsgiApp(registry)

    satisfiability = finder_a.satisfiability_
    thresholds = [
        satisfiability.quantile(q)
        for q in np.linspace(0.70, 0.85, DISTINCT_PER_TENANT)
    ]
    hopeless = satisfiability.quantile(1.0) * 10.0

    total = _load_queries()
    tail_start = (total * 4) // 5  # last 20% waits for the swap to land
    completed = [0]
    refresh_info = {}
    # Ground-truth pairs are generated up front so the refresher thread spends
    # its time training and swapping, not evaluating regions.
    fresh = list(generate_workload(engine, 80, random_state=99))

    def run_storm():
        latencies = []
        statuses = []
        generations = []
        loop = asyncio.new_event_loop()
        refresh_done = asyncio.Event()

        def refresher() -> None:
            # Hot-swap every tenant once the storm is genuinely in flight;
            # the front of the storm keeps serving throughout the refresh.
            try:
                while completed[0] < max(1, total // 20):
                    time.sleep(0.002)
                registry.get("alpha").observe_many(fresh)
                registry.get("beta").observe_many(fresh)
                outcomes = registry.refresh_all()
                refresh_info["outcomes"] = outcomes
                refresh_info["completed_at"] = completed[0]
            finally:
                # Always release the tail, even on failure — a hung event
                # loop would mask the actual error.
                loop.call_soon_threadsafe(refresh_done.set)

        async def one(index: int):
            if index >= tail_start:
                await refresh_done.wait()
            tenant = "alpha" if index % 2 == 0 else "beta"
            if index % 97 == 0:  # a sprinkle of hopeless (rejected) traffic
                threshold = hopeless
            else:
                threshold = thresholds[index % DISTINCT_PER_TENANT]
            start = time.perf_counter()
            response = await asgi_request(
                app,
                "POST",
                "/find",
                json_body={"threshold": threshold, "model": tenant},
            )
            latencies.append(time.perf_counter() - start)
            payload = response.json()
            statuses.append(payload["status"])
            generations.append(payload["generation"])
            completed[0] += 1
            assert response.status == 200, payload

        async def storm():
            await asyncio.gather(*(one(index) for index in range(total)))

        swap_thread = threading.Thread(target=refresher)
        swap_thread.start()
        try:
            loop.run_until_complete(storm())
        finally:
            swap_thread.join(timeout=120.0)
            loop.close()
        return latencies, statuses, generations

    latencies, statuses, generations = benchmark.pedantic(run_storm, rounds=1, iterations=1)

    # Every request came back with a valid verdict — nothing errored or hung.
    assert len(statuses) == total
    assert set(statuses) <= {"served", "cached", "rejected"}
    assert statuses.count("rejected") == len([i for i in range(total) if i % 97 == 0])

    # The hot swap really raced the storm.
    assert set(refresh_info["outcomes"]) == {"alpha", "beta"}
    assert refresh_info["completed_at"] < total
    assert registry.get("alpha").generation >= 1
    assert registry.get("beta").generation >= 1
    assert min(generations) == 0, "no response was served by the original generation"
    assert max(generations) >= 1, "no response was served by the refreshed generation"

    # Latency ceilings (loose by design; see module docstring).
    p50 = percentile(latencies, 50)
    p99 = percentile(latencies, 99)
    assert p50 <= _p50_ceiling(), f"p50 {p50:.3f}s exceeds ceiling {_p50_ceiling()}s"
    assert p99 <= _p99_ceiling(), f"p99 {p99:.3f}s exceeds ceiling {_p99_ceiling()}s"

    # Zero cross-generation cache pollution: everything still cached must
    # re-predict bit-identically under the *current* surrogate.
    polluted = 0
    cached_results = 0
    for name in registry.names():
        kernel = registry.get(name)
        with kernel._lock:
            surrogate = kernel._finder.surrogate_
            entries = list(kernel._cache.values())
        for result in entries:
            cached_results += 1
            for proposal in result.proposals:
                prediction = surrogate.predict_vector(proposal.region.to_vector())
                if prediction != proposal.predicted_value:
                    polluted += 1
    assert cached_results > 0
    assert polluted == 0, f"{polluted} cached proposals predict under a stale generation"

    from conftest import attach_rows

    attach_rows(
        benchmark,
        {
            "queries": total,
            "served": statuses.count("served"),
            "cached": statuses.count("cached"),
            "rejected": statuses.count("rejected"),
            "p50_seconds": round(p50, 4),
            "p99_seconds": round(p99, 4),
            "max_seconds": round(max(latencies), 4),
            "generations_seen": sorted(set(generations)),
            "cached_results_checked": cached_results,
        },
        title="ASGI front door under load (mixed tenants, refresh mid-storm)",
    )
