"""Benchmark regenerating Figure 10: GSO mining time vs swarm size and iterations."""

from conftest import attach_rows

from repro.experiments import fig10_gso_cost


def test_bench_fig10_gso_cost(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig10_gso_cost.run,
        kwargs={
            "scale": bench_scale,
            "dims": (1, 2, 3),
            "particle_counts": (50, 100, 200),
            "iteration_counts": (50, 100, 200),
            "random_state": 19,
        },
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 10 — SuRF-GSO run time vs dimensionality, L and T")
    particle_rows = [row for row in rows if row["sweep"] == "particles"]
    assert max(row["seconds"] for row in particle_rows) < 120
