"""Micro-benchmarks of the core primitives (repeated-measurement pytest-benchmark runs).

Unlike the per-figure benchmarks (which run a whole experiment once), these
time the hot operations SuRF relies on: exact back-end evaluation, surrogate
prediction, KDE region mass and one swarm iteration's worth of fitness calls.
"""

import numpy as np
import pytest

from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.data.synthetic import make_synthetic_dataset
from repro.density.region_mass import RegionMassEstimator
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload
from repro.ml.boosting import GradientBoostingRegressor


@pytest.fixture(scope="module")
def prepared(bench_scale_module):
    scale = bench_scale_module
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=1, num_points=scale.num_points, random_state=0
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 2 * scale.workload_size, random_state=0)
    trainer = SurrogateTrainer(
        estimator=GradientBoostingRegressor(n_estimators=80, max_depth=5, random_state=0), random_state=0
    )
    surrogate = trainer.train(workload)
    density = RegionMassEstimator(method="kde", random_state=0).fit(
        synthetic.dataset.sample(min(1_000, synthetic.dataset.num_rows), random_state=0).values
    )
    probe = synthetic.ground_truth[0].region
    batch = np.tile(probe.to_vector(), (100, 1))
    return engine, surrogate, density, probe, batch


@pytest.fixture(scope="module")
def bench_scale_module():
    import os

    from repro.experiments.config import get_scale

    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


def test_bench_exact_engine_evaluation(benchmark, prepared):
    engine, _, _, probe, _ = prepared
    result = benchmark(engine.evaluate, probe)
    assert result > 0


def test_bench_surrogate_single_prediction(benchmark, prepared):
    _, surrogate, _, probe, _ = prepared
    result = benchmark(surrogate.predict_region, probe)
    assert result > 0


def test_bench_surrogate_batch_prediction(benchmark, prepared):
    _, surrogate, _, _, batch = prepared
    result = benchmark(surrogate.predict, batch)
    assert result.shape == (100,)


def test_bench_kde_region_mass_batch(benchmark, prepared):
    _, _, density, _, batch = prepared
    result = benchmark(density.mass_of_vectors, batch)
    assert result.shape == (100,)


# --------------------------------------------------------------------------- vectorization
# Before/after benchmarks for the vectorised hot paths: the whole-swarm GSO
# movement kernel vs. the retained per-particle reference loop, and the
# engine's broadcast evaluate_batch vs. the seed's per-region scalar path
# (one evaluate_vector call per particle, which is what the true-GSO baseline
# used to pay every iteration).  The speedup tests assert the ISSUE's >= 5x
# acceptance floor using best-of-several timings.

GSO_BENCH_PARTICLES = 400
BATCH_BENCH_REGIONS = 1_000


def _speedup_floor() -> float:
    """Required speedup factor (default 5x; override for noisy shared CI runners)."""
    import os

    return float(os.environ.get("REPRO_SPEEDUP_FLOOR", "5.0"))


def _best_of(slow, fast, rounds=11):
    """Warm best-of-N wall-clock for each callable, measured back to back.

    Each side runs its repeats consecutively (not interleaved) so both are
    timed warm, the way the kernels run inside a real optimisation loop —
    interleaving would let the reference path's large temporaries evict the
    vectorised kernel's working set and skew the ratio.
    """
    import timeit

    return (
        min(timeit.repeat(slow, number=1, repeat=rounds)),
        min(timeit.repeat(fast, number=1, repeat=rounds)),
    )


@pytest.fixture(scope="module")
def swarm_state():
    """A mid-run swarm snapshot at L=400 with a realistic mix of fitness values."""
    from repro.optim.gso import GlowwormSwarmOptimizer, GSOParameters

    dim = 4
    rng = np.random.default_rng(0)
    params = GSOParameters(num_particles=GSO_BENCH_PARTICLES, num_iterations=1, random_state=0)
    optimizer = GlowwormSwarmOptimizer(
        lambda v: -float(np.sum((v - 0.5) ** 2)),
        [0.0] * dim,
        [1.0] * dim,
        params,
        batch_objective=lambda m: -np.sum((m - 0.5) ** 2, axis=1),
    )
    positions = rng.uniform(size=(GSO_BENCH_PARTICLES, dim))
    luciferin = rng.uniform(1.0, 10.0, size=GSO_BENCH_PARTICLES)
    radii = np.full(GSO_BENCH_PARTICLES, 0.3)
    fitness = -np.sum((positions - 0.5) ** 2, axis=1)
    step = 0.03
    max_radius = 1.0
    return optimizer, positions, luciferin, radii, fitness, step, max_radius


def _movement_timer(swarm_state, movement):
    optimizer, positions, luciferin, radii, fitness, step, max_radius = swarm_state

    def run_once():
        # The optimizer is shared between the two timers, so the mode has to
        # be (re)selected on every call, not at closure-creation time.
        optimizer.movement = movement
        rng = np.random.default_rng(123)
        return optimizer._movement_phase(
            positions, luciferin, radii.copy(), fitness, rng, step, max_radius
        )

    return run_once


def test_bench_gso_iteration_reference(benchmark, swarm_state):
    new_positions, _ = benchmark(_movement_timer(swarm_state, "reference"))
    assert new_positions.shape == (GSO_BENCH_PARTICLES, 4)


def test_bench_gso_iteration_vectorized(benchmark, swarm_state):
    new_positions, _ = benchmark(_movement_timer(swarm_state, "vectorized"))
    assert new_positions.shape == (GSO_BENCH_PARTICLES, 4)


def test_gso_iteration_vectorized_speedup(swarm_state):
    """The vectorised movement kernel is >= 5x the per-particle loop at L=400."""
    reference = _movement_timer(swarm_state, "reference")
    vectorized = _movement_timer(swarm_state, "vectorized")
    # Identical results first (same RNG stream, same floating-point decisions).
    ref_positions, ref_radii = reference()
    vec_positions, vec_radii = vectorized()
    assert np.array_equal(ref_positions, vec_positions)
    assert np.array_equal(ref_radii, vec_radii)

    time_reference, time_vectorized = _best_of(reference, vectorized)
    speedup = time_reference / time_vectorized
    print(
        f"\nGSO movement at L={GSO_BENCH_PARTICLES}: reference {time_reference * 1e3:.2f} ms, "
        f"vectorized {time_vectorized * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= _speedup_floor()


@pytest.fixture(scope="module")
def evaluation_batch(prepared):
    """1,000 random region vectors over the prepared engine's data bounds."""
    from repro.data.regions import random_region

    engine = prepared[0]
    rng = np.random.default_rng(11)
    bounds = engine.region_bounds()
    regions = [random_region(rng, bounds, 0.01, 0.3) for _ in range(BATCH_BENCH_REGIONS)]
    return engine, np.stack([region.to_vector() for region in regions])


def test_bench_engine_evaluate_batch(benchmark, evaluation_batch):
    engine, vectors = evaluation_batch
    result = benchmark(engine.evaluate_batch, vectors)
    assert result.shape == (BATCH_BENCH_REGIONS,)


def test_bench_engine_evaluate_looped(benchmark, evaluation_batch):
    engine, vectors = evaluation_batch

    def looped():
        return np.asarray([engine.evaluate_vector(vector) for vector in vectors])

    result = benchmark.pedantic(looped, rounds=3, iterations=1)
    assert result.shape == (BATCH_BENCH_REGIONS,)


def test_engine_evaluate_batch_speedup(evaluation_batch):
    """evaluate_batch of 1,000 regions is >= 5x the per-region scalar path."""
    engine, vectors = evaluation_batch

    def looped():
        return np.asarray([engine.evaluate_vector(vector) for vector in vectors])

    def batched():
        return engine.evaluate_batch(vectors)

    assert np.array_equal(looped(), batched())
    time_looped, time_batched = _best_of(looped, batched, rounds=5)
    speedup = time_looped / time_batched
    print(
        f"\nevaluate_batch of {BATCH_BENCH_REGIONS} regions: looped {time_looped * 1e3:.1f} ms, "
        f"batched {time_batched * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= _speedup_floor()


# --------------------------------------------------------------------------- compiled inference
# Compiled (flat SoA kernel, repro.ml.compiled) vs. recursive ensemble predict
# on the two workload shapes the ISSUE names: a single row predicted 10,000
# times (the scalar serving path) and one 10,000-row batch.  Floors:
#
# * single-row per-call speedup >= REPRO_SPEEDUP_FLOOR (default 5x; ~13x here),
# * per-prediction cost of the compiled 10k-row batch vs. recursive single-row
#   calls >= the same floor (~300x in practice — this is the number that makes
#   the GSO loop's thousands of swarm evaluations cheap),
# * compiled 10k-batch vs. recursive 10k-batch >= REPRO_COMPILED_BATCH_FLOOR
#   (default 1.0 — a no-regression guard; at this size the recursive path is
#   already amortised over rows and both sides are gather-bound, so the honest
#   batch-vs-batch ratio is ~1.2x, reported informationally).

SINGLE_ROW_CALLS = 10_000
#: Per-call cost of the recursive side is measured on a sample of the 10k-call
#: workload: at ~2ms/call the full loop would take ~20s per timing round.
RECURSIVE_CALL_SAMPLE = 400
LARGE_BATCH_ROWS = 10_000


def _compiled_batch_floor() -> float:
    """Floor for compiled-vs-recursive at equal 10k-row batches (default: no regression)."""
    import os

    return float(os.environ.get("REPRO_COMPILED_BATCH_FLOOR", "1.0"))


@pytest.fixture(scope="module")
def compiled_pair(prepared):
    """The prepared 80-tree boosting surrogate, compiled, plus query workloads."""
    _, surrogate, _, _, _ = prepared
    estimator = surrogate.estimator
    predictor = estimator.compile()
    rng = np.random.default_rng(17)
    single = rng.uniform(size=(1, predictor.num_features))
    batch = rng.uniform(size=(LARGE_BATCH_ROWS, predictor.num_features))
    return estimator, predictor, single, batch


def test_bench_compiled_single_row(benchmark, compiled_pair):
    _, predictor, single, _ = compiled_pair
    result = benchmark(predictor.predict, single)
    assert result.shape == (1,)


def test_bench_recursive_single_row(benchmark, compiled_pair):
    estimator, _, single, _ = compiled_pair
    result = benchmark(estimator.predict, single)
    assert result.shape == (1,)


def test_bench_compiled_large_batch(benchmark, compiled_pair):
    _, predictor, _, batch = compiled_pair
    result = benchmark(predictor.predict, batch)
    assert result.shape == (LARGE_BATCH_ROWS,)


def test_compiled_single_row_speedup(compiled_pair):
    """Compiled single-row predict is >= 5x the recursive walk, per call."""
    estimator, predictor, single, _ = compiled_pair
    assert np.array_equal(estimator.predict(single), predictor.predict(single))

    def recursive_sample():
        for _ in range(RECURSIVE_CALL_SAMPLE):
            estimator.predict(single)

    def compiled_all():
        for _ in range(SINGLE_ROW_CALLS):
            predictor.predict(single)

    time_recursive, time_compiled = _best_of(recursive_sample, compiled_all, rounds=3)
    per_call_recursive = time_recursive / RECURSIVE_CALL_SAMPLE
    per_call_compiled = time_compiled / SINGLE_ROW_CALLS
    speedup = per_call_recursive / per_call_compiled
    print(
        f"\nsingle-row predict x{SINGLE_ROW_CALLS} calls: recursive {per_call_recursive * 1e6:.0f} us/call, "
        f"compiled {per_call_compiled * 1e6:.0f} us/call, speedup {speedup:.1f}x"
    )
    assert speedup >= _speedup_floor()


def test_compiled_batch_per_prediction_speedup(compiled_pair):
    """One compiled 10k-row batch vs. 10k recursive single-row calls, per prediction."""
    estimator, predictor, _, batch = compiled_pair
    assert np.array_equal(estimator.predict(batch), predictor.predict(batch))

    def recursive_calls():
        for row in batch[:RECURSIVE_CALL_SAMPLE]:
            estimator.predict(row[None, :])

    def compiled_batch():
        predictor.predict(batch)

    time_recursive, time_compiled = _best_of(recursive_calls, compiled_batch, rounds=3)
    per_prediction_recursive = time_recursive / RECURSIVE_CALL_SAMPLE
    per_prediction_compiled = time_compiled / LARGE_BATCH_ROWS
    speedup = per_prediction_recursive / per_prediction_compiled
    print(
        f"\nper prediction at n={LARGE_BATCH_ROWS}: recursive calls {per_prediction_recursive * 1e6:.0f} us, "
        f"compiled batch {per_prediction_compiled * 1e6:.2f} us, speedup {speedup:.0f}x"
    )
    assert speedup >= _speedup_floor()


def test_compiled_equal_batch_no_regression(compiled_pair):
    """Batch-vs-batch at 10k rows: both sides amortised — compiled must not lose."""
    estimator, predictor, _, batch = compiled_pair

    time_recursive, time_compiled = _best_of(
        lambda: estimator.predict(batch), lambda: predictor.predict(batch), rounds=5
    )
    ratio = time_recursive / time_compiled
    print(
        f"\n{LARGE_BATCH_ROWS}-row batch: recursive {time_recursive * 1e3:.1f} ms, "
        f"compiled {time_compiled * 1e3:.1f} ms, ratio {ratio:.2f}x "
        f"(floor {_compiled_batch_floor():.2f}x)"
    )
    assert ratio >= _compiled_batch_floor()


def test_bench_full_query_end_to_end(benchmark, prepared, bench_scale_module):
    engine, surrogate, density, probe, _ = prepared
    from repro.core.finder import SuRF
    from repro.optim.gso import GSOParameters

    scale = bench_scale_module
    finder = SuRF(
        gso_parameters=GSOParameters(
            num_particles=scale.num_particles, num_iterations=scale.num_iterations, random_state=0
        ),
        random_state=0,
    )
    workload = generate_workload(engine, scale.workload_size, random_state=1)
    finder.fit(workload, data_sample=engine.dataset.sample(500, random_state=0).values)
    query = RegionQuery(threshold=engine.evaluate(probe) * 0.8, direction="above")

    result = benchmark.pedantic(finder.find_regions, args=(query,), rounds=2, iterations=1)
    assert result.optimization.num_iterations > 0
