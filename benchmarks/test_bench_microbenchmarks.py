"""Micro-benchmarks of the core primitives (repeated-measurement pytest-benchmark runs).

Unlike the per-figure benchmarks (which run a whole experiment once), these
time the hot operations SuRF relies on: exact back-end evaluation, surrogate
prediction, KDE region mass and one swarm iteration's worth of fitness calls.
"""

import numpy as np
import pytest

from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.regions import Region
from repro.data.synthetic import make_synthetic_dataset
from repro.density.region_mass import RegionMassEstimator
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload
from repro.ml.boosting import GradientBoostingRegressor


@pytest.fixture(scope="module")
def prepared(bench_scale_module):
    scale = bench_scale_module
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=1, num_points=scale.num_points, random_state=0
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 2 * scale.workload_size, random_state=0)
    trainer = SurrogateTrainer(
        estimator=GradientBoostingRegressor(n_estimators=80, max_depth=5, random_state=0), random_state=0
    )
    surrogate = trainer.train(workload)
    density = RegionMassEstimator(method="kde", random_state=0).fit(
        synthetic.dataset.sample(min(1_000, synthetic.dataset.num_rows), random_state=0).values
    )
    probe = synthetic.ground_truth[0].region
    batch = np.tile(probe.to_vector(), (100, 1))
    return engine, surrogate, density, probe, batch


@pytest.fixture(scope="module")
def bench_scale_module():
    import os

    from repro.experiments.config import get_scale

    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "small"))


def test_bench_exact_engine_evaluation(benchmark, prepared):
    engine, _, _, probe, _ = prepared
    result = benchmark(engine.evaluate, probe)
    assert result > 0


def test_bench_surrogate_single_prediction(benchmark, prepared):
    _, surrogate, _, probe, _ = prepared
    result = benchmark(surrogate.predict_region, probe)
    assert result > 0


def test_bench_surrogate_batch_prediction(benchmark, prepared):
    _, surrogate, _, _, batch = prepared
    result = benchmark(surrogate.predict, batch)
    assert result.shape == (100,)


def test_bench_kde_region_mass_batch(benchmark, prepared):
    _, _, density, _, batch = prepared
    result = benchmark(density.mass_of_vectors, batch)
    assert result.shape == (100,)


def test_bench_full_query_end_to_end(benchmark, prepared, bench_scale_module):
    engine, surrogate, density, probe, _ = prepared
    from repro.core.finder import SuRF
    from repro.optim.gso import GSOParameters

    scale = bench_scale_module
    finder = SuRF(
        gso_parameters=GSOParameters(
            num_particles=scale.num_particles, num_iterations=scale.num_iterations, random_state=0
        ),
        random_state=0,
    )
    workload = generate_workload(engine, scale.workload_size, random_state=1)
    finder.fit(workload, data_sample=engine.dataset.sample(500, random_state=0).values)
    query = RegionQuery(threshold=engine.evaluate(probe) * 0.8, direction="above")

    result = benchmark.pedantic(finder.find_regions, args=(query,), rounds=2, iterations=1)
    assert result.optimization.num_iterations > 0
