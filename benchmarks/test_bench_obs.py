"""Observability overhead guard: tracing + metrics must stay near-free.

The PR 9 acceptance bounds:

* **Cached-burst overhead <= 10%** — serving an all-cached 16-query burst
  through a kernel with full observability (tracing, per-stage latency
  histograms, request counters) must cost at most 1.10x the uninstrumented
  kernel.  This is the paper's headline property again (cached latency
  independent of everything), now with the instrumentation riding along.
* **End-to-end find overhead <= 5%** — a cold GSO-backed ``find`` (where the
  optimiser dominates) must cost at most 1.05x with observability on; the
  per-iteration profile hook is one attribute check plus two trajectory
  appends per swarm iteration.

``REPRO_OBS_OVERHEAD_FLOOR`` relaxes both ceilings on noisy shared runners
(locally and in the tier-1 driver the acceptance values apply).  The measured
per-stage latency breakdown is appended to
``benchmarks/results/test_bench_obs_stage_breakdown.txt``.
"""

import os
import time

import numpy as np
import pytest

from repro.api import FindRequest, ServiceKernel
from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.obs import Observability
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload

#: Queries per burst / distinct thresholds inside it (the PR 5 bench shape).
BATCH_QUERIES = 16
DISTINCT_QUERIES = 4
#: Rounds of the cached-burst timing loop (median-of-rounds is reported).
CACHED_ROUNDS = 400

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _cached_ceiling() -> float:
    """Allowed obs-on cached-burst latency ratio (acceptance: 1.10)."""
    return float(os.environ.get("REPRO_OBS_OVERHEAD_FLOOR", "1.10"))


def _find_ceiling() -> float:
    """Allowed obs-on end-to-end find latency ratio (acceptance: 1.05)."""
    return float(os.environ.get("REPRO_OBS_OVERHEAD_FLOOR", "1.05"))


@pytest.fixture(scope="module")
def obs_finder():
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=5_000, random_state=9
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 1_000, random_state=0)
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=60, max_depth=4, random_state=0),
            random_state=0,
        ),
        gso_parameters=GSOParameters(num_particles=40, num_iterations=25, random_state=0),
        random_state=0,
    )
    sample = engine.dataset.sample(600, random_state=0).select_columns(engine.region_columns).values
    finder.fit(workload, data_sample=sample)
    return finder


@pytest.fixture(scope="module")
def obs_burst(obs_finder):
    """16 requests over 4 distinct thresholds — repeated analyst traffic."""
    model = obs_finder.satisfiability_
    templates = [
        RegionQuery(threshold=float(model.quantile(q)), direction="above")
        for q in np.linspace(0.70, 0.85, DISTINCT_QUERIES)
    ]
    return [
        FindRequest.from_query(templates[i % DISTINCT_QUERIES])
        for i in range(BATCH_QUERIES)
    ]


def _time_interleaved_bursts(bare_batch, observed_batch, burst):
    """Median wall-clock of all-cached bursts, bare and observed interleaved.

    Alternating the two kernels within each round means machine noise (CPU
    frequency drift, background load) hits both measurements alike instead of
    biasing whichever loop ran second.
    """
    bare_samples, observed_samples = [], []
    for _ in range(CACHED_ROUNDS):
        start = time.perf_counter()
        bare_batch(burst)
        middle = time.perf_counter()
        observed_batch(burst)
        bare_samples.append(middle - start)
        observed_samples.append(time.perf_counter() - middle)
    return float(np.median(bare_samples)), float(np.median(observed_samples))


def test_bench_obs_cached_burst_overhead(obs_finder, obs_burst):
    """Full observability costs <= 10% on the all-cached 16-query burst."""
    bare = ServiceKernel(obs_finder)
    observed = ServiceKernel(
        obs_finder, name="observed", observability=Observability()
    )

    # Cold passes fill both caches — and verdicts must be identical before
    # any latency claim.
    bare_responses = bare.handle_batch(obs_burst)
    observed_responses = observed.handle_batch(obs_burst)
    for lhs, rhs in zip(bare_responses, observed_responses):
        assert lhs.status == rhs.status
        assert lhs.proposals == rhs.proposals

    bare_seconds, observed_seconds = _time_interleaved_bursts(
        bare.handle_batch, observed.handle_batch, obs_burst
    )

    ratio = observed_seconds / bare_seconds
    print(
        f"\ncached 16-query burst: bare {bare_seconds * 1e6:.1f}us, "
        f"observed {observed_seconds * 1e6:.1f}us, ratio {ratio:.2f}x "
        f"(ceiling {_cached_ceiling():.2f}x)"
    )
    assert ratio <= _cached_ceiling()

    _write_stage_breakdown(observed)


def test_bench_obs_end_to_end_find_overhead(obs_finder, obs_burst):
    """Observability costs <= 5% on a cold GSO-backed find."""
    request = obs_burst[0]

    def one_cold_find(observability) -> float:
        kernel = ServiceKernel(obs_finder, observability=observability)
        start = time.perf_counter()
        response = kernel.handle(request)
        elapsed = time.perf_counter() - start
        assert response.status == "served"
        return elapsed

    # Interleaved best-of-5: a ~200ms optimiser run jitters by several
    # percent on its own, so alternate the two variants and take each side's
    # best rather than timing two separate loops.
    bare_samples, observed_samples = [], []
    for _ in range(5):
        bare_samples.append(one_cold_find(None))
        observed_samples.append(one_cold_find(Observability()))
    bare_seconds = min(bare_samples)
    observed_seconds = min(observed_samples)

    ratio = observed_seconds / bare_seconds
    print(
        f"\ncold GSO find: bare {bare_seconds * 1e3:.1f}ms, "
        f"observed {observed_seconds * 1e3:.1f}ms, ratio {ratio:.2f}x "
        f"(ceiling {_find_ceiling():.2f}x)"
    )
    assert ratio <= _find_ceiling()


def _write_stage_breakdown(kernel) -> None:
    """Append the measured per-stage latency medians to the results artifact."""
    from repro.experiments.reporting import format_table
    from repro.obs import parse_prometheus_text

    parsed = parse_prometheus_text(kernel.observability.metrics.render())
    sums = parsed.get("repro_request_latency_seconds_sum", {})
    counts = parsed.get("repro_request_latency_seconds_count", {})
    rows = []
    for labels, total in sorted(sums.items()):
        count = counts.get(labels, 0.0)
        if count:
            stage = labels.split('stage="')[1].rstrip('"}')
            rows.append(
                {
                    "stage": stage,
                    "observations": int(count),
                    "mean_us": f"{total / count * 1e6:.2f}",
                }
            )
    text = format_table(rows, title="per-stage latency breakdown (obs-on cached burst)")
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "test_bench_obs_stage_breakdown.txt")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
