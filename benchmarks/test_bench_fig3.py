"""Benchmark regenerating Figure 3: average IoU per method, dimensionality, statistic and k."""

from conftest import attach_rows

from repro.experiments import fig3_accuracy
from repro.experiments.reporting import summarize_rows


def test_bench_fig3_accuracy_comparison(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig3_accuracy.run,
        kwargs={
            "scale": bench_scale,
            "dims": (1, 2, 3),
            "region_counts": (1, 3),
            "statistics": ("aggregate", "density"),
            "random_state": 11,
        },
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 3 — average IoU per (statistic, d, k, method)")
    print()
    summary = summarize_rows(rows, group_by=("method", "statistic"), value="iou")
    attach_rows(benchmark, summary, "Figure 3 summary — mean IoU per method and statistic")
    assert {row["method"] for row in rows} == {"SuRF", "Naive", "PRIM", "f+GlowWorm"}
