"""Benchmark regenerating Figure 2: the synthetic ground-truth datasets."""

from conftest import attach_rows

from repro.data.engine import DataEngine
from repro.data.synthetic import make_benchmark_suite


def test_bench_fig2_synthetic_datasets(benchmark, bench_scale):
    suite = benchmark.pedantic(
        make_benchmark_suite,
        kwargs={
            "dims": (1, 2),
            "region_counts": (1, 3),
            "num_points": bench_scale.num_points,
            "random_state": 7,
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for synthetic in suite:
        engine = DataEngine(synthetic.dataset, synthetic.statistic)
        rows.append(
            {
                "statistic": synthetic.config.statistic,
                "dim": synthetic.config.dim,
                "k": synthetic.config.num_regions,
                "num_points": synthetic.dataset.num_rows,
                "weakest_gt_statistic": min(gt.statistic_value for gt in synthetic.ground_truth),
                "suggested_threshold": synthetic.suggested_threshold(),
            }
        )
    attach_rows(benchmark, rows, "Figure 2 — planted ground-truth datasets")
    assert len(suite) == 8
