"""Serving-layer benchmarks: cold / cached / rejected latency and batch throughput.

Table I of the paper shows SuRF's query time is flat in the dataset size; this
suite extends that story to the serving layer built on top of the finder:

* **cold** — a fresh threshold pays one full GSO run against the surrogate;
* **cached** — a repeated threshold is answered from the service's LRU cache
  without invoking the optimiser;
* **rejected** — a threshold no past evaluation ever satisfied is refused via
  the Eq. 5 satisfiability gate in ``O(log W)``;
* **batch throughput** — ``find_regions_batch`` over a burst of concurrent
  queries (repeated thresholds, as heavy analyst traffic produces) must beat
  sequential ``find_regions`` calls by the acceptance floor (>= 2x by default;
  ``REPRO_SERVING_SPEEDUP_FLOOR`` relaxes it on noisy shared CI runners).
"""

import os
import time

import numpy as np
import pytest

from repro.core.finder import SuRF
from repro.core.query import RegionQuery
from repro.data.engine import DataEngine
from repro.data.synthetic import make_synthetic_dataset
from repro.optim.gso import GSOParameters
from repro.serve.service import SuRFService
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload
from repro.ml.boosting import GradientBoostingRegressor

#: Concurrent queries in the throughput benchmark (the ISSUE floor is >= 8).
BATCH_QUERIES = 16
#: Distinct thresholds inside the burst; the rest are repeats to coalesce.
DISTINCT_QUERIES = 4


def _serving_speedup_floor() -> float:
    """Required batch-over-sequential speedup (default 2x, the acceptance floor)."""
    return float(os.environ.get("REPRO_SERVING_SPEEDUP_FLOOR", "2.0"))


@pytest.fixture(scope="module")
def serving_finder():
    """A fitted finder over a small 2-D density dataset, swarm sized for speed."""
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=5_000, random_state=9
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, 1_000, random_state=0)
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=60, max_depth=4, random_state=0),
            random_state=0,
        ),
        gso_parameters=GSOParameters(num_particles=40, num_iterations=25, random_state=0),
        random_state=0,
    )
    sample = engine.dataset.sample(600, random_state=0).select_columns(engine.region_columns).values
    finder.fit(workload, data_sample=sample)
    return finder


@pytest.fixture(scope="module")
def serving_queries(serving_finder):
    """One satisfiable query, its repeats, and one hopeless threshold."""
    model = serving_finder.satisfiability_
    satisfiable = RegionQuery(threshold=model.quantile(0.75), direction="above")
    hopeless = RegionQuery(threshold=model.quantile(1.0) * 10.0, direction="above")
    return satisfiable, hopeless


def test_bench_serving_cold_query(benchmark, serving_finder, serving_queries):
    """Latency of a never-seen threshold: one full GSO run."""
    satisfiable, _ = serving_queries
    service = SuRFService(serving_finder)

    def cold():
        service.clear_cache()
        return service.find_regions(satisfiable)

    response = benchmark.pedantic(cold, rounds=3, iterations=1)
    assert response.status == "served"
    assert response.proposals


def test_bench_serving_cached_query(benchmark, serving_finder, serving_queries):
    """Latency of a repeated threshold: answered from the LRU cache."""
    satisfiable, _ = serving_queries
    service = SuRFService(serving_finder)
    service.find_regions(satisfiable)  # warm the cache

    response = benchmark(service.find_regions, satisfiable)
    assert response.status == "cached"
    assert service.stats.gso_runs == 1


def test_bench_serving_rejected_query(benchmark, serving_finder, serving_queries):
    """Latency of a hopeless threshold: Eq. 5 rejection, no optimiser run."""
    _, hopeless = serving_queries
    service = SuRFService(serving_finder)

    response = benchmark(service.find_regions, hopeless)
    assert response.status == "rejected"
    assert service.stats.gso_runs == 0


def test_serving_batch_throughput_beats_sequential(serving_finder, serving_queries):
    """find_regions_batch >= 2x sequential find_regions on a 16-query burst.

    The burst repeats {DISTINCT_QUERIES} thresholds across {BATCH_QUERIES}
    queries — the traffic shape result caching and request coalescing exist
    for.  The sequential baseline pays one GSO run per query; the batch path
    runs each distinct query once (on a thread pool) and shares the results.
    """
    model = serving_finder.satisfiability_
    templates = [
        RegionQuery(threshold=model.quantile(q), direction="above")
        for q in np.linspace(0.70, 0.85, DISTINCT_QUERIES)
    ]
    burst = [templates[i % DISTINCT_QUERIES] for i in range(BATCH_QUERIES)]

    start = time.perf_counter()
    sequential = [serving_finder.find_regions(query) for query in burst]
    sequential_seconds = time.perf_counter() - start

    service = SuRFService(serving_finder)
    start = time.perf_counter()
    batched = service.find_regions_batch(burst)
    batch_seconds = time.perf_counter() - start

    # Same answers, query for query, before any throughput claim.
    for before, after in zip(sequential, batched):
        assert after.status == "served"
        assert len(before.proposals) == len(after.proposals)
        for lhs, rhs in zip(before.proposals, after.proposals):
            assert np.array_equal(lhs.region.to_vector(), rhs.region.to_vector())
            assert lhs.objective_value == rhs.objective_value

    stats = service.stats
    assert stats.gso_runs == DISTINCT_QUERIES
    assert stats.coalesced == BATCH_QUERIES - DISTINCT_QUERIES

    speedup = sequential_seconds / batch_seconds
    print(
        f"\nserving burst of {BATCH_QUERIES} queries ({DISTINCT_QUERIES} distinct): "
        f"sequential {sequential_seconds:.2f}s ({BATCH_QUERIES / sequential_seconds:.1f} q/s), "
        f"batch {batch_seconds:.2f}s ({BATCH_QUERIES / batch_seconds:.1f} q/s), "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= _serving_speedup_floor()
