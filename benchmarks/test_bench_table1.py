"""Benchmark regenerating Table I: run-time comparison across data size and dimensionality."""

from conftest import attach_rows

from repro.experiments import table1_scalability


def test_bench_table1_scalability(benchmark, bench_scale):
    rows = benchmark.pedantic(
        table1_scalability.run,
        kwargs={
            "scale": bench_scale,
            "data_sizes": (5_000, 20_000, 80_000),
            "dims": (1, 2, 3),
            "random_state": 37,
        },
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Table I — wall-clock seconds per method, dimensionality and data size")
    print()
    attach_rows(
        benchmark,
        table1_scalability.speedup_summary(rows),
        "Table I summary — SuRF speed-up at the largest measured setting (paper: ≥150× over the best competitor at 10^7 rows)",
    )
    surf_rows = [row for row in rows if row["method"] == "SuRF"]
    assert max(row["seconds"] for row in surf_rows) < 300
