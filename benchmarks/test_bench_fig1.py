"""Benchmark regenerating Figure 1: converged particles satisfying the constraint."""

from conftest import attach_rows

from repro.experiments import fig1_particles


def test_bench_fig1_particle_convergence(benchmark, bench_scale):
    outcome = benchmark.pedantic(
        fig1_particles.run, kwargs={"scale": bench_scale, "random_state": 7}, rounds=1, iterations=1
    )
    summary = {
        "threshold": outcome["threshold"],
        "num_particles": outcome["num_particles"],
        "iterations": outcome["iterations"],
        "surrogate_feasible_fraction": outcome["surrogate_feasible_fraction"],
        "true_satisfied_fraction": outcome["true_satisfied_fraction"],
        "num_proposals": outcome["num_proposals"],
    }
    attach_rows(benchmark, summary, "Figure 1 — particle convergence (paper: ~84% satisfy the true constraint)")
    assert 0.0 <= outcome["true_satisfied_fraction"] <= 1.0
