"""Benchmark regenerating Figure 8: sensitivity of the size-regularisation parameter c."""

from conftest import attach_rows

from repro.experiments import fig8_c_sensitivity


def test_bench_fig8_c_sensitivity(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig8_c_sensitivity.run,
        kwargs={"scale": bench_scale, "c_values": (0.25, 0.5, 0.75, 1.0, 1.5, 2.0), "random_state": 13},
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, rows, "Figure 8 — fraction of viable solutions near the peak vs c")
    assert all(0.0 <= row["viable_fraction"] <= 1.0 for row in rows)
