"""Benchmark regenerating Figure 9: GSO convergence across dimensionality and k."""

from conftest import attach_rows

from repro.experiments import fig9_convergence


def test_bench_fig9_convergence(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig9_convergence.run,
        kwargs={"scale": bench_scale, "dims": (1, 2, 3), "region_counts": (1, 3), "random_state": 17},
        rounds=1,
        iterations=1,
    )
    printable = [
        {key: row[key] for key in ("dim", "solution_dim", "k", "num_particles", "iterations", "converged", "final_mean_objective")}
        for row in rows
    ]
    attach_rows(benchmark, printable, "Figure 9 — iterations to convergence (paper: ~63 on average)")
    average = fig9_convergence.average_iterations(rows)
    print(f"\naverage iterations to convergence: {average:.1f}")
    assert average > 0
