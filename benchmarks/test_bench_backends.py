"""Table-I-style backend sweep: engine scan cost vs. SuRF's flat query time.

Reproduces the headline contrast at data-backend granularity: every
data-backed scan grows with ``N`` (and differs by backend), while SuRF's
query latency — which never touches the data — stays flat.  The sweep runs
``N = 10^5 … 10^6`` by default and extends to ``10^7`` under
``REPRO_BENCH_SCALE=paper``.

Two acceptance floors are asserted:

* ``ShardedBackend`` (4 NumPy shards on a thread pool) reaches >= 2x the
  single-backend batched-evaluation throughput at ``N = 10^6``
  (``REPRO_BACKEND_SPEEDUP_FLOOR`` relaxes the floor on noisy runners; hosts
  without enough cores skip — threads cannot beat one core);
* SuRF query latency is flat in ``N`` (largest/smallest <= 5x, vs. the
  roughly 10x spread of the scan-bound engine across the same sweep).
"""

from __future__ import annotations

import os
import timeit

import numpy as np
import pytest

from conftest import attach_rows

from repro.backends import NumpyBackend, ShardedBackend
from repro.core.query import RegionQuery
from repro.data.dataset import Dataset
from repro.data.engine import DataEngine
from repro.data.statistics import CountStatistic
from repro.experiments import common
from repro.experiments.config import get_scale

SWEEP_SIZES = {
    "small": (100_000, 300_000, 1_000_000),
    "medium": (100_000, 1_000_000, 3_000_000),
    "paper": (100_000, 1_000_000, 10_000_000),
}

#: Backends swept at every N.  SQLite joins only the smallest size: loading
#: 10^6+ rows into a table dominates the benchmark's runtime without adding
#: information (its per-query scan cost is already visible at 10^5).
SWEEP_BACKENDS = ("numpy", "chunked", "sharded")

NUM_REGIONS = 64
SPEEDUP_SHARDS = 4


def _sweep_sizes() -> tuple:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return SWEEP_SIZES.get(scale, SWEEP_SIZES["small"])


def _speedup_floor() -> float:
    """Required sharded speedup (default 2x; override for noisy shared runners)."""
    return float(os.environ.get("REPRO_BACKEND_SPEEDUP_FLOOR", "2.0"))


def _make_dataset(num_points: int, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    return Dataset(rng.uniform(size=(num_points, 2)), ["x", "y"])


def _query_vectors(num_regions: int = NUM_REGIONS, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(num_regions, 2))
    halves = rng.uniform(0.01, 0.15, size=(num_regions, 2))
    return np.column_stack([centers, halves])


def _best_of(callable_, rounds: int = 3) -> float:
    return min(timeit.repeat(callable_, number=1, repeat=rounds))


def test_backend_scalability_sweep(benchmark, bench_scale):
    """One Table-I-style table: per-backend scan seconds and SuRF seconds vs N."""
    vectors = _query_vectors()
    sizes = _sweep_sizes()

    # SuRF is trained once on the smallest dataset (its cost is offline); the
    # measured per-N latency is the pure query-time GSO run.
    base = _make_dataset(sizes[0])
    train_engine = DataEngine(base, CountStatistic())
    finder, _ = common.fit_surf(train_engine, bench_scale, random_state=0)
    query = RegionQuery(threshold=float(np.median(train_engine.statistic_sample(50, random_state=0))), direction="above")

    rows = []
    surf_seconds = {}
    scan_seconds = {}
    for num_points in sizes:
        dataset = _make_dataset(num_points)
        for name in SWEEP_BACKENDS + (("sqlite",) if num_points == sizes[0] else ()):
            options = {"num_shards": SPEEDUP_SHARDS} if name == "sharded" else None
            engine = DataEngine(
                dataset, CountStatistic(), backend=name, backend_options=options
            )
            engine.evaluate_batch(vectors)  # warm (page in / open cursors)
            seconds = _best_of(lambda: engine.evaluate_batch(vectors))
            scan_seconds.setdefault(name, {})[num_points] = seconds
            rows.append(
                {
                    "backend": name,
                    "num_points": num_points,
                    "evaluate_batch_seconds": round(seconds, 5),
                    "regions": NUM_REGIONS,
                }
            )
            engine.close()
        surf_seconds[num_points] = _best_of(lambda: finder.find_regions(query), rounds=2)
        rows.append(
            {
                "backend": "SuRF (no data access)",
                "num_points": num_points,
                "evaluate_batch_seconds": round(surf_seconds[num_points], 5),
                "regions": "-",
            }
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    attach_rows(benchmark, rows, "Backend scalability sweep (Table I protocol)")

    # SuRF flat in N: its spread across the sweep stays within 5x while the
    # engine scan cost grows roughly linearly with N (>= the size ratio / 3).
    flatness = max(surf_seconds.values()) / max(min(surf_seconds.values()), 1e-9)
    assert flatness <= 5.0, f"SuRF latency varied {flatness:.1f}x across N"
    growth = scan_seconds["numpy"][sizes[-1]] / max(scan_seconds["numpy"][sizes[0]], 1e-9)
    assert growth >= (sizes[-1] / sizes[0]) / 3.0, (
        f"engine scan cost grew only {growth:.1f}x from N={sizes[0]} to N={sizes[-1]}"
    )


def test_sharded_speedup_at_1e6(benchmark):
    """4-shard parallel scan >= 2x single-backend throughput at N = 10^6."""
    cores = os.cpu_count() or 1
    if cores < SPEEDUP_SHARDS:
        pytest.skip(
            f"host has {cores} core(s); {SPEEDUP_SHARDS}-shard thread parallelism "
            "cannot beat a single-threaded scan here (floor asserted on multi-core CI)"
        )
    num_points = 1_000_000
    rng = np.random.default_rng(0)
    region = rng.uniform(size=(num_points, 2))
    vectors = _query_vectors()
    lowers = vectors[:, :2] - vectors[:, 2:]
    uppers = vectors[:, :2] + vectors[:, 2:]
    single = NumpyBackend(region)
    sharded = ShardedBackend.from_arrays(
        region, num_shards=SPEEDUP_SHARDS, max_workers=SPEEDUP_SHARDS
    )
    statistic = CountStatistic()
    # Identical results first, then wall clock.
    assert np.array_equal(
        single.evaluate(statistic, lowers, uppers), sharded.evaluate(statistic, lowers, uppers)
    )
    time_single = _best_of(lambda: single.evaluate(statistic, lowers, uppers), rounds=5)
    time_sharded = _best_of(lambda: sharded.evaluate(statistic, lowers, uppers), rounds=5)
    speedup = time_single / time_sharded
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    attach_rows(
        benchmark,
        {
            "num_points": num_points,
            "shards": SPEEDUP_SHARDS,
            "single_seconds": round(time_single, 5),
            "sharded_seconds": round(time_sharded, 5),
            "speedup": round(speedup, 2),
        },
        "Sharded parallel exact evaluation",
    )
    assert speedup >= _speedup_floor(), (
        f"sharded scan reached only {speedup:.2f}x over the single backend"
    )


def test_bench_sharded_evaluate_batch(benchmark):
    """pytest-benchmark timing of the sharded backend at the sweep's base size."""
    dataset = _make_dataset(100_000)
    engine = DataEngine(
        dataset,
        CountStatistic(),
        backend="sharded",
        backend_options={"num_shards": SPEEDUP_SHARDS},
    )
    vectors = _query_vectors()
    result = benchmark(engine.evaluate_batch, vectors)
    assert result.shape == (NUM_REGIONS,)
    engine.close()
