#!/usr/bin/env python3
"""Human-activity analysis: find sensor-space regions with a high "stand" ratio.

Mirrors the paper's second qualitative experiment: using accelerometer
readings (X, Y, Z) the analyst asks for regions where the ratio of readings
labelled ``stand`` exceeds 30 % — a statistically rare event
(``P(f > 0.3) ≈ 0.003`` in the paper) that implicitly suggests classification
boundaries for that activity.

Run with ``python examples/activity_regions.py``.
"""

from __future__ import annotations

import numpy as np

from repro import RegionQuery, SuRF
from repro.data import DataEngine, make_activity_like
from repro.data.real import ACTIVITY_CLASSES, activity_stand_region
from repro.data.statistics import RatioStatistic
from repro.experiments.reporting import format_table
from repro.surrogate.workload import generate_workload


def main() -> None:
    activity = make_activity_like(num_points=20_000, random_state=3)
    statistic = RatioStatistic("activity", positive_value=ACTIVITY_CLASSES["stand"])
    engine = DataEngine(activity, statistic)

    global_ratio = float(np.mean(np.isclose(activity.column("activity"), ACTIVITY_CLASSES["stand"])))
    print(f"readings: {activity.num_rows}, global 'stand' ratio: {global_ratio:.1%}")

    # How unlikely is the analyst's request?  (Eq. 5 / the paper's empirical CDF check.)
    sample = engine.statistic_sample(300, random_state=2)
    cdf = engine.empirical_cdf(sample)
    threshold = 0.30
    print(f"P(f(x,l) > {threshold}) over random regions ≈ {1.0 - cdf(threshold):.4f}")

    finder = SuRF(use_density_guidance=False, random_state=2)
    workload = generate_workload(engine, num_evaluations=3_000, random_state=2)
    finder.fit(workload)

    query = RegionQuery(threshold=threshold, direction="above", size_penalty=2.0)
    result = finder.find_regions(query, max_proposals=5)
    stand_region = activity_stand_region()

    rows = []
    for proposal in result.proposals:
        rows.append(
            {
                "acc_x": f"[{proposal.region.lower[0]:.2f}, {proposal.region.upper[0]:.2f}]",
                "acc_y": f"[{proposal.region.lower[1]:.2f}, {proposal.region.upper[1]:.2f}]",
                "acc_z": f"[{proposal.region.lower[2]:.2f}, {proposal.region.upper[2]:.2f}]",
                "predicted_ratio": proposal.predicted_value,
                "true_ratio": engine.evaluate(proposal.region),
                "touches_true_stand_cluster": proposal.region.intersects(stand_region),
            }
        )
    if rows:
        print(format_table(rows, title="\nproposed high-'stand'-ratio regions"))
    else:
        print("no regions found — try lowering the threshold or training on more evaluations")


if __name__ == "__main__":
    main()
