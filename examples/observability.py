#!/usr/bin/env python3
"""End-to-end observability: request tracing, /metrics and GSO profiling.

This example stands up one observed tenant and walks the full PR 9 story:

1. **One shared bundle** — an :class:`~repro.obs.Observability` (metrics
   registry + trace ring + JSONL export + per-stage timing breakdown) is
   attached to the tenant at registration; everything below is recorded by
   it without touching any core code.
2. **Traces** — a cold query runs the optimiser and its ``GET /trace/{id}``
   span tree shows a ``gso-run`` span with iteration/surrogate-eval counts
   and the swarm's radius trajectory; repeating the query answers from the
   cache and its trace has no optimiser span at all.
3. **Metrics** — ``GET /metrics`` serves Prometheus text: request counters
   by verdict, per-stage latency histograms, optimiser-run counters and the
   backend's rows-scanned accounting, all parsed and asserted here.
4. **Opt-in timing** — with ``timing_breakdown=True`` every response
   envelope carries its per-stage latency dict.

Every step asserts its outcome, so this file doubles as the CI smoke test
for the observability path.  Run with ``python examples/observability.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile

from repro.api import AsgiApp, ModelRegistry, asgi_request
from repro.core.finder import SuRF
from repro.data import DataEngine, make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.obs import Observability, parse_prometheus_text
from repro.online import QueryLog
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload

TENANT = "crimes/count"


def fit_tenant(engine) -> SuRF:
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=40, max_depth=4, random_state=0),
            random_state=0,
        ),
        gso_parameters=GSOParameters(num_particles=30, num_iterations=20, random_state=0),
        random_state=0,
        use_density_guidance=False,
    )
    return finder.fit(generate_workload(engine, 600, random_state=0))


def span_names(node, depth=0):
    yield depth, node["name"], node
    for child in node.get("children", ()):
        yield from span_names(child, depth + 1)


def main() -> None:
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=4_000, random_state=11
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    print("fitting the tenant ...")
    finder = fit_tenant(engine)
    threshold = float(finder.satisfiability_.quantile(0.75))

    with tempfile.TemporaryDirectory() as scratch:
        jsonl_path = os.path.join(scratch, "traces.jsonl")
        obs = Observability(timing_breakdown=True, trace_jsonl=jsonl_path)
        registry = ModelRegistry()
        registry.register(
            TENANT,
            finder,
            query_log=QueryLog(capacity=10_000),
            exact_engine=engine,
            observability=obs,
        )
        app = AsgiApp(registry)

        # -------------------------------------------------------------- traffic
        async def drive():
            async def find(trace_id, bump=0.0):
                reply = await asgi_request(
                    app,
                    "POST",
                    "/find",
                    json_body={
                        "threshold": threshold * (1 + bump),
                        "model": TENANT,
                        "trace_id": trace_id,
                    },
                )
                assert reply.status == 200, reply.status
                return reply.json()

            cold = await find("obs-cold")
            warm = await find("obs-warm")  # same threshold: cache answers
            other = await find("obs-other", bump=0.02)
            metrics = await asgi_request(app, "GET", "/metrics")
            cold_trace = await asgi_request(app, "GET", "/trace/obs-cold")
            warm_trace = await asgi_request(app, "GET", "/trace/obs-warm")
            missing = await asgi_request(app, "GET", "/trace/nope")
            return cold, warm, other, metrics, cold_trace, warm_trace, missing

        cold, warm, other, metrics, cold_trace, warm_trace, missing = asyncio.run(drive())
        assert cold["status"] == "served" and other["status"] == "served"
        assert warm["status"] == "cached"

        # -------------------------------------------------------------- timing
        for response in (cold, warm, other):
            timing = response["timing"]
            assert timing is not None and timing["total"] >= timing["harvest"] >= 0.0
        print(
            "timing breakdown (cold find): "
            + ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in sorted(cold["timing"].items()))
        )

        # -------------------------------------------------------------- traces
        assert cold_trace.status == 200 and warm_trace.status == 200
        assert missing.status == 404
        cold_tree = cold_trace.json()
        names = [name for _, name, _ in span_names(cold_tree["spans"])]
        for stage in ("normalize", "satisfiability-gate", "cache", "coalesce", "execute", "harvest"):
            assert stage in names, names
        runs = [n for _, name, n in span_names(cold_tree["spans"]) if name == "gso-run"]
        assert len(runs) == 1
        profile = runs[0]["attributes"]
        assert profile["surrogate_evals"] > 0
        assert len(profile["radius_trajectory"]) == profile["iterations"]
        assert "gso-run" not in json.dumps(warm_trace.json())  # cache path: no optimiser
        print(
            f"trace obs-cold: {len(names)} spans, gso-run ran "
            f"{profile['iterations']} iterations / {profile['surrogate_evals']} surrogate evals; "
            "trace obs-warm: answered without an optimiser span"
        )

        # -------------------------------------------------------------- metrics
        assert metrics.status == 200
        content_type = dict(metrics.headers).get("content-type", "")
        assert content_type.startswith("text/plain; version=0.0.4"), content_type
        parsed = parse_prometheus_text(metrics.body.decode())

        label = f'{{model="{TENANT}",verdict="%s"}}'
        assert parsed["repro_requests_total"][label % "served"] == 2.0
        assert parsed["repro_requests_total"][label % "cached"] == 1.0
        totals = f'{{model="{TENANT}",stage="total"}}'
        assert parsed["repro_request_latency_seconds_count"][totals] == 3.0
        assert parsed["repro_gso_runs_total"][f'{{model="{TENANT}"}}'] == 2.0
        evals = parsed["repro_gso_surrogate_evals_total"][f'{{model="{TENANT}"}}']
        assert evals > 0
        rows_scanned = sum(parsed["repro_backend_rows_scanned_total"].values())
        assert rows_scanned > 0  # harvest verified proposals against the backend
        print(
            f"/metrics: {sum(len(v) for v in parsed.values())} series across "
            f"{len(parsed)} names — {int(evals)} surrogate evals, "
            f"{int(rows_scanned)} backend rows scanned"
        )

        # -------------------------------------------------------------- export
        registry.close()
        obs.tracer.close()
        with open(jsonl_path, "r", encoding="utf-8") as handle:
            exported = [json.loads(line) for line in handle]
        assert {record["trace_id"] for record in exported} >= {"obs-cold", "obs-warm", "obs-other"}
        print(f"JSONL export: {len(exported)} trace records written to disk")

    print("observability example OK")


if __name__ == "__main__":
    main()
