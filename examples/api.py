#!/usr/bin/env python3
"""One front door: typed envelopes, multi-tenant routing, custom middleware.

This example walks the PR 5 serving architecture end to end:

1. **Tenants** — two finders (a density model and an average model: the
   dataset × statistic pairs a real deployment hosts side by side) are fitted
   and registered in one :class:`~repro.api.ModelRegistry` under the names
   ``crimes/count`` and ``sensors/average``.
2. **Typed envelopes** — every query is a frozen
   :class:`~repro.api.FindRequest` carrying the threshold, the target model
   and a trace id; every answer is a :class:`~repro.api.FindResponse` that
   round-trips through JSON (the wire format an HTTP front-end would speak).
3. **Custom middleware** — a ~15-line latency/status histogram middleware is
   inserted ahead of the standard ``Normalize → SatisfiabilityGate → Cache →
   Coalesce → Execute → Harvest`` chain, without touching any core code.
4. **Mixed-tenant batch** — one burst holding both tenants' queries is routed,
   coalesced and answered in input order.

Run with ``python examples/api.py``.
"""

from __future__ import annotations

import json
import time
from collections import Counter

from repro.api import (
    FindRequest,
    FindResponse,
    ModelRegistry,
    default_chain,
)
from repro.data import DataEngine, make_synthetic_dataset
from repro.experiments.reporting import format_table
from repro.ml.boosting import GradientBoostingRegressor
from repro.optim.gso import GSOParameters
from repro.core.finder import SuRF
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


class MetricsMiddleware:
    """Deployment-style observability: per-status counts and latency sums.

    Any ``(ctx, next)`` callable is a middleware; this one watches every batch
    on its way *out* of the chain, so it sees final statuses and timings.
    """

    name = "metrics"

    def __init__(self):
        self.statuses = Counter()
        self.seconds_by_status = Counter()

    def __call__(self, ctx, next):
        next(ctx)
        for state in ctx.states:
            self.statuses[state.status] += 1
            self.seconds_by_status[state.status] += state.elapsed_seconds
        return ctx


def fit_tenant(statistic: str, random_state: int) -> SuRF:
    synthetic = make_synthetic_dataset(
        statistic=statistic, dim=2, num_regions=1, num_points=4_000, random_state=random_state
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(n_estimators=50, max_depth=4, random_state=0),
            random_state=0,
        ),
        use_density_guidance=False,
        gso_parameters=GSOParameters(num_particles=40, num_iterations=25, random_state=0),
        random_state=0,
    )
    return finder.fit(generate_workload(engine, 800, random_state=random_state))


def main() -> None:
    # ------------------------------------------------------------- tenants
    metrics = MetricsMiddleware()
    registry = ModelRegistry(middleware=[metrics, *default_chain()])
    registry.register("crimes/count", fit_tenant("density", random_state=3))
    registry.register("sensors/average", fit_tenant("aggregate", random_state=5))
    print(f"registered tenants: {list(registry.names())}")

    crimes_cdf = registry.get("crimes/count").finder.satisfiability_
    sensors_cdf = registry.get("sensors/average").finder.satisfiability_

    # ------------------------------------------------------------- envelopes
    request = FindRequest(
        threshold=float(crimes_cdf.quantile(0.75)),
        direction="above",
        model="crimes/count",
        trace_id="trace-001",
    )
    wire = request.to_json()  # what an HTTP front-end would POST
    response = registry.find(FindRequest.from_json(wire))
    assert response.status == "served" and response.proposals, response
    assert response.trace_id == "trace-001"
    # The response round-trips through JSON too (minus the in-process result).
    echoed = FindResponse.from_json(response.to_json())
    assert echoed == response and echoed.result is None
    print(
        f"served {request.model} threshold={request.threshold:.1f}: "
        f"{len(response.proposals)} proposals, trace={response.trace_id}, "
        f"wire payload {len(wire)} bytes"
    )

    # ------------------------------------------------------------- mixed batch
    burst = []
    for index in range(8):
        burst.append(
            FindRequest(
                threshold=float(crimes_cdf.quantile(0.70 + 0.02 * (index % 2))),
                model="crimes/count",
                trace_id=f"crimes-{index}",
            )
        )
        burst.append(
            FindRequest(
                threshold=float(sensors_cdf.quantile(0.60 + 0.05 * (index % 2))),
                model="sensors/average",
                trace_id=f"sensors-{index}",
            )
        )
    # One hopeless threshold: the Eq. 5 gate rejects it without a swarm run.
    burst.append(
        FindRequest(threshold=float(crimes_cdf.quantile(1.0)) * 10, model="crimes/count")
    )

    start = time.perf_counter()
    responses = registry.find_batch(burst)
    elapsed = time.perf_counter() - start
    assert [r.model for r in responses] == [r.model for r in burst]  # input order
    statuses = Counter(response.status for response in responses)
    print(
        f"mixed-tenant burst of {len(burst)} served in {elapsed:.2f}s: "
        f"{dict(statuses)}"
    )
    assert statuses["rejected"] == 1
    # 2 distinct thresholds per tenant -> 4 GSO runs total, everything else shared.
    per_tenant = registry.stats()
    total_runs = sum(stats.gso_runs for stats in per_tenant.values())
    assert total_runs == 5, per_tenant  # 1 cold single + 2 + 2 from the burst
    rows = [
        {"tenant": name,
         **{k: v for k, v in stats.as_dict().items()
            if k not in ("hit_rate", "since_refresh")},
         "hit_rate": f"{stats.hit_rate:.2f}"}
        for name, stats in per_tenant.items()
    ]
    print(format_table(rows, title="per-tenant serving counters"))

    # Repeating the whole burst is answered from the caches alone.
    again = registry.find_batch(burst)
    assert [r.status for r in again].count("cached") == len(burst) - 1
    assert sum(stats.gso_runs for stats in registry.stats().values()) == total_runs

    # ------------------------------------------------------------- middleware
    assert metrics.statuses["served"] >= 5
    assert metrics.statuses["cached"] >= len(burst) - 1
    print(
        "metrics middleware saw: "
        + json.dumps(dict(metrics.statuses))
        + f", total observed latency {sum(metrics.seconds_by_status.values()):.2f}s"
    )
    print("api example OK")


if __name__ == "__main__":
    main()
