#!/usr/bin/env python3
"""Serving under load: the ASGI front door, load control and hot swaps.

This example stands up the full production serving story at a small scale:

1. **Two tenants** are fitted and registered in a
   :class:`~repro.api.ModelRegistry`; each kernel runs the *production chain*
   — ``Normalize → RateLimit → SatisfiabilityGate → Deadline → Cache →
   Coalesce → AdmissionControl → Execute → Harvest`` — so overload turns
   into explicit per-request verdicts instead of unbounded queueing.
2. **The ASGI app** (:class:`~repro.api.AsgiApp`) serves both tenants over
   HTTP/JSON.  A burst of concurrent queries is driven through it in-process
   (no sockets) on one asyncio event loop, while a refresh **hot-swaps** a
   tenant's model mid-burst.
3. **Degraded verdicts map to HTTP statuses**: a throttled tenant answers
   ``429``, an expired deadline ``504`` — the body always carries the full
   :class:`~repro.api.FindResponse` envelope.
4. **The stdlib dev server** (:class:`~repro.api.HttpFrontDoor`) serves the
   same app over a real loopback socket for one smoke request.

Every step asserts its outcome, so this file doubles as the CI smoke test
for the serving-under-load path.  Run with ``python examples/load.py``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time

from repro.api import (
    AdmissionControl,
    AsgiApp,
    Deadline,
    HttpFrontDoor,
    ModelRegistry,
    RateLimit,
    asgi_request,
    production_chain,
)
from repro.core.finder import SuRF
from repro.data import DataEngine, make_synthetic_dataset
from repro.ml.boosting import GradientBoostingRegressor
from repro.online import QueryLog
from repro.optim.gso import GSOParameters
from repro.surrogate.training import SurrogateTrainer
from repro.surrogate.workload import generate_workload


def fit_tenant(engine, random_state: int) -> SuRF:
    finder = SuRF(
        trainer=SurrogateTrainer(
            estimator=GradientBoostingRegressor(
                n_estimators=40, max_depth=4, random_state=random_state
            ),
            random_state=random_state,
        ),
        gso_parameters=GSOParameters(
            num_particles=30, num_iterations=20, random_state=random_state
        ),
        random_state=random_state,
        use_density_guidance=False,
    )
    return finder.fit(generate_workload(engine, 600, random_state=random_state))


def main() -> None:
    # ------------------------------------------------------------------ tenants
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=4_000, random_state=11
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    print("fitting two tenants ...")
    finder_a = fit_tenant(engine, random_state=0)
    finder_b = fit_tenant(engine, random_state=1)

    registry = ModelRegistry()
    registry.register(
        "crimes/count",
        finder_a,
        cache_size=64,
        query_log=QueryLog(capacity=50_000),
        middleware=production_chain(
            deadline=Deadline(default_budget=30.0),
            admission=AdmissionControl(max_inflight=8, max_queue=16),
        ),
    )
    # The second tenant is aggressively rate-limited to demonstrate 429s.
    registry.register(
        "sensors/average",
        finder_b,
        cache_size=64,
        middleware=production_chain(rate_limit=RateLimit(rate=0.5, capacity=2)),
    )
    app = AsgiApp(registry)

    threshold = finder_a.satisfiability_.quantile(0.75)

    # ------------------------------------------------------------------ the burst
    async def burst():
        start = time.perf_counter()
        health = await asgi_request(app, "GET", "/healthz")
        assert health.status == 200 and health.json()["models"] == [
            "crimes/count",
            "sensors/average",
        ]

        async def one(index: int):
            return await asgi_request(
                app,
                "POST",
                "/find",
                json_body={
                    "threshold": threshold * (1 + 0.01 * (index % 5)),
                    "model": "crimes/count",
                    "trace_id": f"req-{index}",
                },
            )

        async def swap():
            # Hot-swap the tenant while the burst is in flight: log fresh
            # ground truth, then refresh off the event loop.
            kernel = registry.get("crimes/count")
            kernel.observe_many(list(generate_workload(engine, 60, random_state=7)))
            await asyncio.to_thread(registry.refresh, "crimes/count")

        results = await asyncio.gather(*(one(i) for i in range(120)), swap())
        responses = [r.json() for r in results[:-1]]
        # A second wave after the swap: the same thresholds now re-run against
        # the refreshed model (the hot swap cleared the cache atomically).
        second_wave = await asyncio.gather(*(one(i) for i in range(120, 126)))
        responses.extend(r.json() for r in second_wave)
        seconds = time.perf_counter() - start
        return responses, seconds

    responses, seconds = asyncio.run(burst())
    statuses = [r["status"] for r in responses]
    generations = sorted({r["generation"] for r in responses})
    print(
        f"burst: {len(responses)} queries in {seconds:.2f}s — "
        f"{statuses.count('served')} served, {statuses.count('cached')} cached, "
        f"generations seen: {generations}"
    )
    assert set(statuses) <= {"served", "cached"}, set(statuses)
    assert registry.get("crimes/count").generation == 1
    assert generations == [0, 1], generations
    assert [r["trace_id"] for r in responses] == [f"req-{i}" for i in range(126)]

    # ------------------------------------------------------------------ degraded verdicts
    async def degraded():
        limited = [
            await asgi_request(
                app,
                "POST",
                "/find",
                json_body={"threshold": threshold * (1 + 0.01 * i), "model": "sensors/average"},
            )
            for i in range(4)
        ]
        expired = await asgi_request(
            app,
            "POST",
            "/find",
            json_body={
                "threshold": threshold * 2.0,
                "model": "crimes/count",
                "deadline_seconds": 1e-9,
            },
        )
        return limited, expired

    limited, expired = asyncio.run(degraded())
    assert [r.status for r in limited[:2]] == [200, 200]
    assert all(r.status == 429 for r in limited[2:]), [r.status for r in limited]
    assert all(r.json()["status"] == "throttled" for r in limited[2:])
    assert expired.status == 504 and expired.json()["status"] == "timeout"
    print(
        "degraded verdicts: burst capacity 2 -> third request onward 429 (throttled); "
        "1ns budget -> 504 (timeout)"
    )

    stats = registry.get("sensors/average").stats
    assert stats.throttled == 2, stats.as_dict()

    # ------------------------------------------------------------------ real socket
    with HttpFrontDoor(app) as door:
        connection = http.client.HTTPConnection("127.0.0.1", door.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/find",
                body=json.dumps({"threshold": threshold, "model": "crimes/count"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200 and payload["status"] in ("served", "cached")
        finally:
            connection.close()
    print(f"stdlib dev server answered on port {door.port}: {payload['status']}")
    registry.close()
    print("load example OK")


if __name__ == "__main__":
    main()
