#!/usr/bin/env python3
"""Classification-boundary discovery — the paper's high-dimensional use case.

In the introduction the paper motivates finding "regions with a high ratio of
certain classes, which implicitly suggest classification boundaries".  This
example builds a labelled 4-dimensional dataset with two class-pure pockets,
asks SuRF for regions where the ratio of the positive class exceeds 80 %, and
then shows how those regions can be used directly as an interpretable
rule-based baseline classifier.
"""

from __future__ import annotations

import numpy as np

from repro import RegionQuery, SuRF
from repro.data import DataEngine, Dataset
from repro.data.statistics import RatioStatistic
from repro.experiments.reporting import format_table
from repro.surrogate.workload import generate_workload


def build_labelled_dataset(num_points: int = 12_000, random_state: int = 17) -> Dataset:
    """Features in [0,1]^4 with two pockets where the positive class dominates."""
    rng = np.random.default_rng(random_state)
    features = rng.uniform(size=(num_points, 4))
    labels = np.zeros(num_points)
    pockets = [np.array([0.25, 0.25, 0.5, 0.5]), np.array([0.75, 0.7, 0.4, 0.6])]
    for center in pockets:
        inside = np.all(np.abs(features - center) <= 0.12, axis=1)
        labels[inside] = (rng.uniform(size=int(inside.sum())) < 0.9).astype(float)
    # Sparse background positives.
    background = rng.uniform(size=num_points) < 0.03
    labels[background] = 1.0
    return Dataset(np.column_stack([features, labels]), ["f1", "f2", "f3", "f4", "label"])


def main() -> None:
    dataset = build_labelled_dataset()
    statistic = RatioStatistic("label", positive_value=1.0)
    engine = DataEngine(dataset, statistic)
    positive_rate = float(np.mean(dataset.column("label") == 1.0))
    print(f"points: {dataset.num_rows}, overall positive rate: {positive_rate:.1%}")

    finder = SuRF(use_density_guidance=False, random_state=4)
    workload = generate_workload(engine, num_evaluations=4_000, random_state=4)
    finder.fit(workload)

    query = RegionQuery(threshold=0.8, direction="above", size_penalty=2.0)
    result = finder.find_regions(query, max_proposals=4)

    rows = []
    for proposal in result.proposals:
        true_ratio = engine.evaluate(proposal.region)
        support = engine.support(proposal.region)
        rows.append(
            {
                "f1": f"[{proposal.region.lower[0]:.2f}, {proposal.region.upper[0]:.2f}]",
                "f2": f"[{proposal.region.lower[1]:.2f}, {proposal.region.upper[1]:.2f}]",
                "f3": f"[{proposal.region.lower[2]:.2f}, {proposal.region.upper[2]:.2f}]",
                "f4": f"[{proposal.region.lower[3]:.2f}, {proposal.region.upper[3]:.2f}]",
                "true_ratio": true_ratio,
                "points_covered": support,
            }
        )
    if not rows:
        print("no regions above the requested class ratio were found")
        return
    print(format_table(rows, title="\nclass-pure regions (candidate classification rules)"))

    # Use the mined regions as a rule-based classifier: predict positive inside any region.
    features = dataset.select_columns(["f1", "f2", "f3", "f4"]).values
    labels = dataset.column("label")
    predicted = np.zeros(dataset.num_rows, dtype=bool)
    for proposal in result.proposals:
        predicted |= proposal.region.contains_points(features)
    true_positive = np.sum(predicted & (labels == 1.0))
    precision = true_positive / max(predicted.sum(), 1)
    recall = true_positive / max((labels == 1.0).sum(), 1)
    print(f"\nrule-based classifier from mined regions: precision {precision:.2f}, recall {recall:.2f}")
    print("(high precision / modest recall is expected: the rules only cover the dense pockets)")


if __name__ == "__main__":
    main()
