#!/usr/bin/env python3
"""Crime hot-spot analysis — the paper's Figure 5 use case.

An analyst wants every city area whose incident count exceeds the third
quartile of "typical" areas.  SuRF trains a surrogate once on past region
evaluations and then answers the request without touching the incident table
again; the script verifies each proposed area against the true counts and the
planted hot-spots of the Crimes-like dataset.

Run with ``python examples/crime_hotspots.py``.
"""

from __future__ import annotations

import numpy as np

from repro import RegionQuery, SuRF, compliance_rate
from repro.data import DataEngine, make_crimes_like
from repro.data.real import crimes_hotspot_regions
from repro.data.statistics import CountStatistic
from repro.experiments.reporting import format_table
from repro.surrogate.workload import generate_workload


def main() -> None:
    crimes = make_crimes_like(num_points=30_000, random_state=11)
    engine = DataEngine(crimes, CountStatistic())
    print(f"crime incidents: {crimes.num_rows}")

    # The analyst's implicit threshold: the 3rd quartile of counts over random
    # neighbourhood-sized areas (up to ~5% of the city extent).
    sample = engine.statistic_sample(300, random_state=1, max_fraction=0.05)
    threshold = float(np.quantile(sample, 0.75))
    query = RegionQuery(threshold=threshold, direction="above", size_penalty=4.0)
    print(f"y_R = Q3 of random-area counts = {threshold:.0f}")

    # Areas thinner than ~5% of the city extent are not actionable for an analyst,
    # so constrain the smallest admissible half side length accordingly.
    finder = SuRF(min_half_fraction=0.025, random_state=1)
    workload = generate_workload(engine, num_evaluations=4_000, random_state=1)
    finder.fit(workload, data_sample=crimes.sample(1_500, random_state=1).values)

    result = finder.find_regions(query, max_proposals=6)
    hotspots = crimes_hotspot_regions()

    rows = []
    for proposal in result.proposals:
        best_hotspot_iou = max(proposal.region.iou(hotspot) for hotspot in hotspots)
        rows.append(
            {
                "x_range": f"[{proposal.region.lower[0]:.2f}, {proposal.region.upper[0]:.2f}]",
                "y_range": f"[{proposal.region.lower[1]:.2f}, {proposal.region.upper[1]:.2f}]",
                "predicted_count": proposal.predicted_value,
                "true_count": engine.evaluate(proposal.region),
                "hotspot_iou": best_hotspot_iou,
            }
        )
    print(format_table(rows, title="\nproposed high-crime areas"))
    print(
        f"\n{compliance_rate(result.proposals, engine, query):.0%} of the proposed areas truly exceed Q3 "
        "(the paper reports 100% on the Chicago Crimes data)"
    )


if __name__ == "__main__":
    main()
