#!/usr/bin/env python3
"""Pluggable data backends: one engine API, four storage engines.

The paper's back-end "data/analytics system" is opaque — SuRF only needs
exact answers to ``f(x, l)``.  This example runs the *same* engine API over
all four :mod:`repro.backends` implementations and shows that:

1. every backend returns **bit-identical** statistics and masks
   (``numpy`` in-memory, ``chunked`` memory-mapped files, ``sqlite`` range
   ``WHERE`` scans, ``sharded`` parallel shards);
2. a surrogate trained against one backend serves queries identically no
   matter which backend ground-truths the proposals — here the
   ``SuRFService`` harvests its query log through a *sharded* exact engine;
3. backend choice is a capability decision (out-of-core? parallel? SQL?),
   not a correctness decision.

Run with ``python examples/backends.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RegionQuery, SuRF, SuRFService
from repro.data import DataEngine, make_crimes_like
from repro.data.statistics import CountStatistic
from repro.experiments.reporting import format_table
from repro.online import QueryLog
from repro.optim.gso import GSOParameters

NUM_POINTS = 40_000
BACKENDS = {
    "numpy": None,
    "chunked": {"block_rows": 8_192},
    "sqlite": None,
    "sharded": {"num_shards": 4},
}


def main() -> None:
    crimes = make_crimes_like(num_points=NUM_POINTS, random_state=0)
    statistic = CountStatistic()

    # ----------------------------------------------------------- 1. bit-identical scans
    rng = np.random.default_rng(7)
    vectors = np.column_stack(
        [rng.uniform(0.2, 0.8, size=(32, 2)), rng.uniform(0.01, 0.1, size=(32, 2))]
    )
    rows, reference, engines = [], None, {}
    for name, options in BACKENDS.items():
        engine = DataEngine(crimes, statistic, backend=name, backend_options=options)
        start = time.perf_counter()
        values = engine.evaluate_batch(vectors)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = values
        assert np.array_equal(values, reference), f"{name} diverged from the reference"
        rows.append(
            {
                "backend": name,
                "out_of_core": engine.backend.out_of_core,
                "parallel": engine.backend.parallel,
                "batch_of_32_ms": round(seconds * 1e3, 2),
            }
        )
        engines[name] = engine
    print(format_table(rows, title=f"Backend capability/latency (N={NUM_POINTS:,}, bit-identical results)"))

    # ------------------------------------------- 2. serving ground-truthed by any backend
    finder = SuRF.from_engine(
        engines["numpy"],
        num_evaluations=1_000,
        gso_parameters=GSOParameters(num_particles=40, num_iterations=25, random_state=0),
        random_state=0,
    )
    threshold = float(np.quantile(engines["numpy"].statistic_sample(100, random_state=1), 0.75))
    log = QueryLog(capacity=1_000)
    service = SuRFService(finder, query_log=log, exact_engine=engines["sharded"])
    response = service.find_regions(RegionQuery(threshold=threshold, direction="above"))
    assert response.status == "served" and response.proposals
    assert service.stats.harvested == len(response.proposals)
    harvested = log.since(0)[0]
    exact = engines["chunked"].evaluate_many([pair.region for pair in harvested])
    assert np.array_equal(exact, np.asarray([pair.value for pair in harvested]))
    print(
        f"served {len(response.proposals)} proposals; {service.stats.harvested} pairs "
        "ground-truthed through the sharded backend and verified bit-identical "
        "against the chunked backend"
    )

    for engine in engines.values():
        engine.close()
    print("backends demo OK")


if __name__ == "__main__":
    main()
