#!/usr/bin/env python3
"""Serving: train once, ship an artifact bundle, answer heavy query traffic.

This example walks the deployment story the paper's Table I motivates:

1. **Offline** (the beefy machine): evaluate a workload against the back-end,
   fit a ``SuRF`` finder and save the whole thing — surrogate, solution space,
   density model, Eq. 5 satisfiability model, configuration — to a single
   artifact bundle with ``finder.save(path)``.
2. **Online** (the serving host): load the bundle with
   ``SuRFService.from_bundle`` — no data, no engine, no training — and serve
   threshold queries with result caching, Eq. 5 rejection of hopeless
   thresholds, and coalesced multi-query batches.

Run with ``python examples/serving.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import RegionQuery, SuRF, SuRFService
from repro.data import DataEngine, make_synthetic_dataset
from repro.experiments.reporting import format_table
from repro.optim.gso import GSOParameters
from repro.surrogate.workload import generate_workload


def train_and_save(bundle_path: Path) -> None:
    """The offline phase: one engine pass, one fit, one file on disk."""
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=6_000, random_state=3
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    workload = generate_workload(engine, num_evaluations=1_500, random_state=0)
    finder = SuRF(
        gso_parameters=GSOParameters(num_particles=60, num_iterations=50, random_state=0),
        random_state=0,
    )
    data_sample = engine.dataset.sample(800, random_state=0).values
    finder.fit(workload, data_sample=data_sample)
    saved = finder.save(bundle_path)
    print(
        f"offline: trained on {finder.workload_size_} evaluations over "
        f"{engine.dataset.num_rows} points, bundle saved to {saved.name} "
        f"({saved.stat().st_size / 1024:.0f} KiB)"
    )


def serve_from_bundle(bundle_path: Path) -> None:
    """The online phase: everything below runs without touching the data."""
    service = SuRFService.from_bundle(bundle_path, cache_size=64)
    model = service.finder.satisfiability_

    # Thresholds chosen from the Eq. 5 statistic CDF, like the paper's Q3 pick.
    q3 = RegionQuery(threshold=model.quantile(0.75), direction="above")
    q9 = RegionQuery(threshold=model.quantile(0.90), direction="above")
    hopeless = RegionQuery(threshold=model.quantile(1.0) * 10, direction="above")

    rows = []
    for label, query in [
        ("cold (GSO runs)", q3),
        ("repeat (cache hit)", q3),
        ("rejected (Eq. 5)", hopeless),
    ]:
        response = service.find_regions(query)
        rows.append(
            {
                "request": label,
                "status": response.status,
                "satisfiability": f"{response.satisfiability:.2f}",
                "proposals": len(response.proposals),
                "latency_ms": f"{response.elapsed_seconds * 1e3:.2f}",
            }
        )
    print(format_table(rows, title="\nsingle-query serving"))

    # A burst of concurrent analyst traffic: repeated thresholds dominate, so
    # coalescing + caching answer 12 queries with only one new GSO run.
    burst = [q3, q9, q3, hopeless, q9, q3, q9, q3, q9, q3, hopeless, q9]
    start = time.perf_counter()
    responses = service.find_regions_batch(burst)
    batch_seconds = time.perf_counter() - start
    statuses = {status: sum(1 for r in responses if r.status == status) for status in ("served", "cached", "rejected")}
    print(
        f"\nbatch of {len(burst)} queries in {batch_seconds * 1e3:.0f} ms "
        f"({len(burst) / batch_seconds:.1f} queries/s): {statuses}"
    )

    stats = service.stats
    print(
        f"service stats: {stats.queries} queries, {stats.gso_runs} GSO runs, "
        f"{stats.cache_hits} cache hits, {stats.coalesced} coalesced, "
        f"{stats.rejected} rejected, hit rate {stats.hit_rate:.0%}"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = Path(tmp) / "surf.bundle"
        train_and_save(bundle_path)
        serve_from_bundle(bundle_path)


if __name__ == "__main__":
    main()
