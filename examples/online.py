#!/usr/bin/env python3
"""Online learning: serve, harvest the query log, refresh, hot-swap.

The paper trains the surrogate on "pairs ``([x, l], y)`` harvested from the
query log" — a loop this example runs end to end:

1. **Offline**: fit a ``SuRF`` finder on ``W = 1,000`` past evaluations of a
   base distribution and wrap it in a ``SuRFService`` wired to a ``QueryLog``.
2. **Drift**: the deployment's traffic shifts to a *different* distribution
   (here: the planted density clusters move); 500 exact evaluations from the
   drifted world are observed into the log.
3. **Refresh**: ``service.refresh()`` folds the logged pairs into the
   surrogate — warm-start rounds normally, a full refit when the rolling
   residual monitor says the model has drifted — refreshes the Eq. 5
   satisfiability CDF from the enlarged sample, and **hot-swaps** the new
   models atomically (one pointer swap; in-flight queries finish on the old
   generation).
4. The surrogate's RMSE on held-out *drifted* evaluations must improve
   measurably (asserted — this script doubles as the serve-smoke CI check),
   while a refresh with zero new pairs stays a bit-identical no-op.

Run with ``python examples/online.py``.
"""

from __future__ import annotations

import numpy as np

from repro import QueryLog, RegionQuery, SuRF, SuRFService
from repro.data import DataEngine, make_synthetic_dataset
from repro.experiments.reporting import format_table
from repro.optim.gso import GSOParameters
from repro.surrogate.workload import generate_workload


def build_service() -> SuRFService:
    """The offline phase: W = 1,000 past evaluations of the base distribution."""
    base = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=1, num_points=6_000, random_state=3
    )
    engine = DataEngine(base.dataset, base.statistic)
    workload = generate_workload(engine, num_evaluations=1_000, random_state=0)
    finder = SuRF(
        use_density_guidance=False,
        gso_parameters=GSOParameters(num_particles=60, num_iterations=40, random_state=0),
        random_state=0,
    )
    finder.fit(workload)
    print(f"offline: surrogate trained on W={finder.workload_size_} base-distribution pairs")
    return SuRFService(finder, query_log=QueryLog(capacity=100_000))


def main() -> None:
    service = build_service()

    # A refresh before anything was logged is a strict no-op: nothing swaps,
    # the cache survives, serving stays bit-identical.
    query = RegionQuery(
        threshold=service.finder.satisfiability_.quantile(0.75), direction="above"
    )
    cold = service.find_regions(query)
    noop = service.refresh()
    warm = service.find_regions(query)
    assert noop.mode == "noop" and service.generation == 0, noop
    assert warm.status == "cached" and warm.result is cold.result, warm
    print(f"no new pairs: refresh is a no-op (mode={noop.mode!r}, cache intact)")

    # The world drifts: traffic now comes from a distribution whose planted
    # clusters sit elsewhere.  500 exact evaluations are harvested into the
    # query log; 400 more are held out to measure the surrogate honestly.
    drifted = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=2, num_points=6_000, random_state=17
    )
    drifted_engine = DataEngine(drifted.dataset, drifted.statistic)
    observed = generate_workload(drifted_engine, num_evaluations=500, random_state=1)
    holdout = generate_workload(drifted_engine, num_evaluations=400, random_state=2)
    service.observe_many(list(observed))
    print(f"drift: {service.pending_log_entries} exact drifted-world pairs logged")

    rmse_before = service.finder.surrogate_.rmse(holdout.features, holdout.targets)
    samples_before = service.finder.satisfiability_.num_samples
    workload_before = service.finder.workload_size_
    outcome = service.refresh()
    rmse_after = service.finder.surrogate_.rmse(holdout.features, holdout.targets)

    rows = [
        {"metric": "refresh mode", "value": outcome.mode},
        {"metric": "drift score (rolling/baseline RMSE)", "value": f"{outcome.drift_score:.2f}"},
        {"metric": "pairs folded in", "value": outcome.num_new_pairs},
        {"metric": "training workload", "value": f"{workload_before} -> {outcome.workload_size}"},
        {
            "metric": "Eq. 5 CDF sample",
            "value": f"{samples_before} -> {service.finder.satisfiability_.num_samples}",
        },
        {"metric": "holdout RMSE (drifted region)", "value": f"{rmse_before:.1f} -> {rmse_after:.1f}"},
        {"metric": "refresh wall clock", "value": f"{outcome.seconds * 1e3:.0f} ms"},
        {"metric": "model generation", "value": service.generation},
    ]
    print(format_table(rows, title="\nserve -> log -> refresh -> swap"))

    # The acceptance gate: folding harvested pairs must measurably improve the
    # surrogate where the traffic actually lives now.
    assert outcome.mode in ("incremental", "full"), outcome
    assert service.generation == 1
    assert np.isfinite(rmse_after)
    assert rmse_after < 0.9 * rmse_before, (
        f"refresh did not measurably improve drifted-region RMSE: "
        f"{rmse_before:.2f} -> {rmse_after:.2f}"
    )

    # And the refreshed service keeps serving: the swapped-in satisfiability
    # model knows the drifted statistic range, the swarm the enlarged space.
    response = service.find_regions(
        RegionQuery(threshold=service.finder.satisfiability_.quantile(0.75), direction="above")
    )
    assert response.status == "served" and response.proposals, response
    print(
        f"\npost-swap serving OK: {len(response.proposals)} proposals, "
        f"stats={service.stats.as_dict()}"
    )
    improvement = 100.0 * (1.0 - rmse_after / rmse_before)
    print(f"online refresh improved drifted-region RMSE by {improvement:.0f}%")


if __name__ == "__main__":
    main()
