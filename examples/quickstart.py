#!/usr/bin/env python3
"""Quickstart: mine interesting regions of a synthetic dataset with SuRF.

The script walks through the full pipeline the paper describes:

1. build a dataset with planted ground-truth regions (Fig. 2 of the paper),
2. let the back-end engine answer past region evaluations (the workload),
3. train a surrogate model on that workload,
4. ask SuRF for regions whose point count exceeds a cut-off ``y_R``,
5. compare the proposals against the planted ground truth.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import RegionQuery, SuRF, average_iou, compliance_rate
from repro.data import DataEngine, make_synthetic_dataset
from repro.experiments.reporting import format_table
from repro.surrogate.workload import generate_workload


def main() -> None:
    # 1. A 2-D dataset with three dense ground-truth regions.
    synthetic = make_synthetic_dataset(
        statistic="density", dim=2, num_regions=3, num_points=8_000, random_state=7
    )
    engine = DataEngine(synthetic.dataset, synthetic.statistic)
    print(f"dataset: {engine.dataset.num_rows} points, {engine.region_dim} region dimensions")
    for index, truth in enumerate(synthetic.ground_truth):
        print(f"  planted region {index}: count = {truth.statistic_value:.0f}")

    # 2. Past region evaluations — in production these come from the query log.
    workload = generate_workload(engine, num_evaluations=2_000, random_state=0)

    # 3. Train the surrogate (and the KDE used to steer the swarm, Eq. 8).
    finder = SuRF(random_state=0)
    data_sample = engine.dataset.sample(1_000, random_state=0).values
    finder.fit(workload, data_sample=data_sample)
    report = finder.trainer.last_report_
    print(
        f"surrogate trained on {report.num_training_examples} evaluations "
        f"in {report.training_seconds:.2f}s (hold-out RMSE {report.test_rmse:.1f})"
    )

    # 4. Ask for regions whose count exceeds the threshold.
    query = RegionQuery(threshold=synthetic.suggested_threshold(), direction="above", size_penalty=4.0)
    print(f"query: {query}")
    result = finder.find_regions(query)
    print(
        f"swarm: {result.optimization.num_iterations} iterations, "
        f"{result.optimization.feasible_fraction:.0%} of particles feasible, "
        f"{result.num_regions} distinct proposals in {result.elapsed_seconds:.2f}s"
    )

    # 5. Report the proposals and how well they match the planted regions.
    rows = []
    for proposal in result.proposals:
        rows.append(
            {
                "center": np.array2string(proposal.region.center, precision=2),
                "half_lengths": np.array2string(proposal.region.half_lengths, precision=2),
                "predicted": proposal.predicted_value,
                "true": engine.evaluate(proposal.region),
                "support": proposal.support,
            }
        )
    print(format_table(rows, title="\nproposed regions"))
    print(f"\naverage IoU against ground truth: {average_iou(result.all_feasible_regions(), synthetic.ground_truth_regions):.3f}")
    print(f"compliance of proposals with the true statistic: {compliance_rate(result.proposals, engine, query):.0%}")


if __name__ == "__main__":
    main()
